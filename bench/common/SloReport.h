//===- bench/common/SloReport.h - Latency-SLO report helpers ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared rendering of serving-suite results (DESIGN.md §14) into the
/// BENCH_*.json schema, used by bench/latency_slo.cpp and by the SLO
/// pipeline integration test (which must emit byte-compatible reports to
/// exercise tools/bench_compare).
///
/// Metric naming: <workload>.t<threads>.<percentile>_ms — the "_ms" suffix
/// opts every percentile into bench_compare's time-like regression gate,
/// and the per-percentile ceilings ride the schema's "ceilings" section.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_BENCH_SLO_REPORT_H
#define GCASSERT_BENCH_SLO_REPORT_H

#include "common/BenchJson.h"
#include "gcassert/serving/ServingHarness.h"

#include <string>

namespace gcassert {
namespace bench {

/// Per-configuration percentile samples across trials.
struct SloTrialSamples {
  SampleSet P50Ms;
  SampleSet P95Ms;
  SampleSet P99Ms;
  SampleSet P999Ms;
  SampleSet MaxMs;
  uint64_t Requests = 0;
  uint64_t OverlappingPause = 0;
  uint64_t GcCycles = 0;
  uint64_t Violations = 0;

  void add(const serving::ServingResult &Result) {
    auto Ms = [](uint64_t Nanos) {
      return static_cast<double>(Nanos) / 1e6;
    };
    P50Ms.add(Ms(Result.Latency.valueAtPercentile(50)));
    P95Ms.add(Ms(Result.Latency.valueAtPercentile(95)));
    P99Ms.add(Ms(Result.Latency.valueAtPercentile(99)));
    P999Ms.add(Ms(Result.Latency.valueAtPercentile(99.9)));
    MaxMs.add(Ms(Result.Latency.max()));
    Requests += Result.Requests;
    OverlappingPause += Result.RequestsOverlappingPause;
    GcCycles += Result.GcCycles;
    Violations += Result.Violations;
  }
};

/// Emits one configuration's series + scalars under \p Prefix (e.g.
/// "kv.t1"). Every percentile series carries the "_ms" suffix so
/// bench_compare gates it as time-like.
inline void addSloSeries(JsonReport &Report, const std::string &Prefix,
                         const SloTrialSamples &Samples) {
  Report.addSeries(Prefix + ".p50_ms", Samples.P50Ms);
  Report.addSeries(Prefix + ".p95_ms", Samples.P95Ms);
  Report.addSeries(Prefix + ".p99_ms", Samples.P99Ms);
  Report.addSeries(Prefix + ".p999_ms", Samples.P999Ms);
  Report.addSeries(Prefix + ".max_ms", Samples.MaxMs);
  Report.addScalar(Prefix + ".requests",
                   static_cast<double>(Samples.Requests));
  Report.addScalar(Prefix + ".requests_overlapping_pause",
                   static_cast<double>(Samples.OverlappingPause));
  Report.addScalar(Prefix + ".gc_cycles",
                   static_cast<double>(Samples.GcCycles));
  Report.addScalar(Prefix + ".violations",
                   static_cast<double>(Samples.Violations));
}

/// Declares the per-percentile SLO ceilings for \p Prefix. Callers gate
/// this on host topology (emit-only-where-attainable; see BenchJson.h) —
/// an oversubscribed host queues requests behind timeslices, not GC, and
/// its tail says nothing about the runtime.
inline void addSloCeilings(JsonReport &Report, const std::string &Prefix,
                           double P99MaxMs, double P999MaxMs) {
  Report.addCeiling(Prefix + ".p99_ms", P99MaxMs);
  Report.addCeiling(Prefix + ".p999_ms", P999MaxMs);
}

} // namespace bench
} // namespace gcassert

#endif // GCASSERT_BENCH_SLO_REPORT_H
