//===- bench/common/BenchCommon.h - Shared bench harness --------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure/table benches: run N trials of a workload
/// under a configuration, accumulate total/GC/mutator samples, and print
/// rows the way the paper's figures report them (normalized to Base, with
/// 90% confidence intervals — §3.1.1's methodology: fixed workloads, 20
/// trials, error bars at 90% confidence).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_BENCH_COMMON_H
#define GCASSERT_BENCH_COMMON_H

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/support/Stats.h"
#include "gcassert/workloads/Harness.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace gcassert {
namespace bench {

/// The 19 performance workloads (the paper's DaCapo 2006 + SPECjvm98 +
/// pseudojbb suites); the leak-variant workloads are excluded from timing
/// runs.
inline std::vector<std::string> perfWorkloads() {
  return {"compress", "jess",  "db",      "javac",   "mpegaudio",
          "mtrt",     "jack",  "antlr",   "bloat",   "chart",
          "eclipse",  "fop",   "hsqldb",  "jython",  "luindex",
          "lusearch", "pmd",   "xalan",   "pseudojbb"};
}

/// Samples from repeated runs of one workload/configuration pair.
struct ConfigSamples {
  SampleSet TotalMs;
  SampleSet GcMs;
  SampleSet MutatorMs;
  EngineCounters LastCounters;
};

/// Runs \p Trials timed trials (each a fresh VM) and collects samples.
inline ConfigSamples runTrials(const std::string &Workload,
                               BenchConfig Config, int Trials,
                               HarnessOptions Options = HarnessOptions()) {
  ConfigSamples Samples;
  RecordingViolationSink Sink; // Suppress console output during timing.
  Options.Sink = &Sink;
  for (int Trial = 0; Trial != Trials; ++Trial) {
    Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
    RunResult Result = runWorkload(Workload, Config, Options);
    Samples.TotalMs.add(Result.TotalMillis);
    Samples.GcMs.add(Result.GcMillis);
    Samples.MutatorMs.add(Result.MutatorMillis);
    Samples.LastCounters = Result.Counters;
  }
  return Samples;
}

/// Runs \p Trials trials of every configuration in \p Configs with the
/// configurations interleaved (trial 0 of each, then trial 1 of each, ...),
/// which cancels slow machine drift out of the between-config comparison.
inline std::vector<ConfigSamples>
runPairedTrials(const std::string &Workload,
                const std::vector<BenchConfig> &Configs, int Trials,
                HarnessOptions Options = HarnessOptions()) {
  std::vector<ConfigSamples> Samples(Configs.size());
  RecordingViolationSink Sink;
  Options.Sink = &Sink;
  for (int Trial = 0; Trial != Trials; ++Trial) {
    Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
    // Rotate the starting configuration each trial: running the same
    // configuration first every time hands its successors systematically
    // warmer caches and branch predictors, biasing the comparison.
    for (size_t I = 0; I != Configs.size(); ++I) {
      size_t C = (I + static_cast<size_t>(Trial)) % Configs.size();
      RunResult Result = runWorkload(Workload, Configs[C], Options);
      Samples[C].TotalMs.add(Result.TotalMillis);
      Samples[C].GcMs.add(Result.GcMillis);
      Samples[C].MutatorMs.add(Result.MutatorMillis);
      Samples[C].LastCounters = Result.Counters;
    }
  }
  return Samples;
}

/// Number of trials: 20 by default like the paper, overridable with
/// GCASSERT_BENCH_TRIALS or the first CLI argument for quicker runs.
inline int trialCount(int Argc, char **Argv, int Default = 20) {
  if (const char *Env = std::getenv("GCASSERT_BENCH_TRIALS"))
    return std::max(2, std::atoi(Env));
  for (int I = 1; I < Argc; ++I)
    if (!std::strncmp(Argv[I], "--trials=", 9))
      return std::max(2, std::atoi(Argv[I] + 9));
  return Default;
}

/// Percent overhead of \p Test over \p Base means.
inline double overheadPercent(const SampleSet &Base, const SampleSet &Test) {
  return (Test.mean() / Base.mean() - 1.0) * 100.0;
}

/// Combined 90% CI half-width of the normalized ratio, in percent — a
/// first-order error propagation of the two means' intervals.
inline double ratioConfidence(const SampleSet &Base, const SampleSet &Test) {
  double RelBase = Base.confidence90() / Base.mean();
  double RelTest = Test.confidence90() / Test.mean();
  return (RelBase + RelTest) * (Test.mean() / Base.mean()) * 100.0;
}

inline void printRule() {
  outs() << "------------------------------------------------------------"
            "------------------\n";
}

} // namespace bench
} // namespace gcassert

#endif // GCASSERT_BENCH_COMMON_H
