//===- GBenchJsonMain.h - BENCH_*.json emission for google-benchmark -----------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Replacement for BENCHMARK_MAIN() that mirrors every benchmark's adjusted
// real time into a BENCH_<name>.json report (BenchJson.h) while keeping the
// normal console output. Aggregate rows (mean/median/stddev from
// --benchmark_repetitions) are skipped: the per-iteration rows already carry
// the timing, and bench_compare consumes the scalar per benchmark.
//
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_BENCH_COMMON_GBENCHJSONMAIN_H
#define GCASSERT_BENCH_COMMON_GBENCHJSONMAIN_H

#include "BenchJson.h"

#include <benchmark/benchmark.h>

namespace gcassert {
namespace bench {

/// Console reporter that additionally records each run's adjusted real time
/// (and items/sec when set) into a JsonReport.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonCapturingReporter(JsonReport &Report) : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration)
        continue;
      std::string Name = R.benchmark_name();
      // Slashes from ->Arg(N) ranges ("BM_Foo/10000") are fine in JSON keys
      // but awkward in shells; keep them as-is, bench_compare treats names
      // opaquely.
      Report.addScalar(Name + ".real_time_ns", R.GetAdjustedRealTime());
      if (R.counters.find("items_per_second") != R.counters.end())
        Report.addScalar(Name + ".items_per_second",
                         R.counters.at("items_per_second"));
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  JsonReport &Report;
};

inline int gbenchJsonMain(const char *ReportName, int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  JsonReport Report(ReportName);
  // The google-benchmark micro benches are single-threaded by construction.
  Report.setTopology(/*GcThreads=*/1, /*MutatorThreads=*/1);
  JsonCapturingReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return Report.write() ? 0 : 1;
}

} // namespace bench
} // namespace gcassert

/// Use instead of BENCHMARK_MAIN() to get BENCH_<name>.json alongside the
/// console table.
#define GCASSERT_GBENCH_JSON_MAIN(NAME)                                        \
  int main(int argc, char **argv) {                                            \
    return gcassert::bench::gbenchJsonMain(NAME, argc, argv);                  \
  }

#endif // GCASSERT_BENCH_COMMON_GBENCHJSONMAIN_H
