//===- fig5_assertions_gctime.cpp - Figure 5 reproduction -----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// FIG5 (DESIGN.md §4): GC time with GC assertions added, for _209_db and
// pseudojbb.
//
// Paper result (§3.1.2, Figure 5): GC time increases by 49.7% (db) and
// 15.3% (pseudojbb) over Base; by 30.1% and 4.40% over Infrastructure.
// "While the increase in GC time is significant, it is a low cost for
// checking the ownership properties of over 15,000 objects."
//
// Usage: fig5_assertions_gctime [--trials=N]   (default 10; paper used 20)
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("fig5_assertions_gctime");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "Figure 5: GC-time overhead with GC assertions added\n";
  outs() << format("trials per configuration: %d\n\n", Trials);
  outs() << format("%-12s %11s %11s %11s %15s %15s\n", "benchmark",
                   "base (ms)", "infra (ms)", "assert (ms)",
                   "vs base (%)", "vs infra (%)");
  printRule();

  struct PaperRow {
    const char *Workload;
    double PaperVsBase;
    double PaperVsInfra;
  };
  const PaperRow PaperRows[] = {{"db", 49.7, 30.1}, {"pseudojbb", 15.3, 4.4}};

  for (const PaperRow &Row : PaperRows) {
    std::vector<ConfigSamples> Samples = runPairedTrials(
        Row.Workload,
        {BenchConfig::Base, BenchConfig::Infrastructure,
         BenchConfig::WithAssertions},
        Trials);
    ConfigSamples &Base = Samples[0];
    ConfigSamples &Infra = Samples[1];
    ConfigSamples &Assert = Samples[2];

    outs() << format("%-12s %11.2f %11.2f %11.2f %15.2f %15.2f\n",
                     Row.Workload, Base.GcMs.mean(), Infra.GcMs.mean(),
                     Assert.GcMs.mean(),
                     overheadPercent(Base.GcMs, Assert.GcMs),
                     overheadPercent(Infra.GcMs, Assert.GcMs));
    outs() << format("%-12s %11s %11s %11s %15.2f %15.2f   (paper)\n", "",
                     "", "", "", Row.PaperVsBase, Row.PaperVsInfra);
    outs().flush();
    std::string W = Row.Workload;
    Report.addSeries(W + ".gc_ms.base", Base.GcMs);
    Report.addSeries(W + ".gc_ms.infra", Infra.GcMs);
    Report.addSeries(W + ".gc_ms.assert", Assert.GcMs);
  }

  printRule();
  outs() << "Note: our substrate's baseline collector does far less work\n"
            "per object than Jikes RVM's, so the same absolute assertion\n"
            "work shows up as a larger *relative* GC overhead; the shape —\n"
            "assertion cost concentrated in GC time while total time moves\n"
            "by a few percent (Figure 4) — is what this bench checks.\n";
  return Report.write() ? 0 : 1;
}
