//===- failpoint_overhead.cpp - Cost of compiled-in failpoints ----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The fault-injection sites (DESIGN.md §8) are compiled into production
// builds; the acceptance bar is that a disarmed site costs one relaxed
// atomic load — within the noise of the allocation fast path (≤1% on
// BM_AllocateNoRegion from micro_primitives, which this file re-measures
// alongside the raw check costs for a direct comparison; the allocation
// *fast* path itself contains zero failpoint checks by design, the sites
// sit on the slow paths behind it).
//
//===----------------------------------------------------------------------===//

#include "common/GBenchJsonMain.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/runtime/Vm.h"

#include <benchmark/benchmark.h>

using namespace gcassert;

namespace {

/// The raw cost of a disarmed shouldFail(): the hot-path configuration
/// every site is in during normal operation.
void BM_DisarmedFailpoint(benchmark::State &State) {
  Failpoint FP("bench.disarmed");
  for (auto _ : State)
    benchmark::DoNotOptimize(FP.shouldFail());
}
BENCHMARK(BM_DisarmedFailpoint);

/// Armed policies pay the mutex + policy evaluation; they only ever run
/// inside fault-injection tests, measured here for completeness.
void BM_ArmedAlways(benchmark::State &State) {
  Failpoint FP("bench.always");
  FP.armAlways();
  for (auto _ : State)
    benchmark::DoNotOptimize(FP.shouldFail());
}
BENCHMARK(BM_ArmedAlways);

void BM_ArmedEveryNth(benchmark::State &State) {
  Failpoint FP("bench.every");
  FP.armEveryNth(1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(FP.shouldFail());
}
BENCHMARK(BM_ArmedEveryNth);

void BM_ArmedProbability(benchmark::State &State) {
  Failpoint FP("bench.prob");
  FP.armProbabilityPercent(1, 42);
  for (auto _ : State)
    benchmark::DoNotOptimize(FP.shouldFail());
}
BENCHMARK(BM_ArmedProbability);

/// Allocation throughput with the failpoints baked in, mirroring
/// micro_primitives' BM_AllocateNoRegion for a side-by-side comparison
/// against the committed bench_results/micro_primitives.txt baseline.
void BM_AllocateNoRegion(benchmark::State &State) {
  VmConfig Config;
  Config.HeapBytes = 64u << 20;
  Vm TheVm(Config);
  TypeBuilder B(TheVm.types(), "LNode;");
  B.addRef("next");
  B.addScalar("value", 8);
  TypeId Node = B.build();
  MutatorThread &T = TheVm.mainThread();
  for (auto _ : State)
    benchmark::DoNotOptimize(TheVm.allocate(T, Node));
}
BENCHMARK(BM_AllocateNoRegion);

/// Allocation throughput with a (never-firing) armed probability site, the
/// worst realistic configuration: sites armed but the allocation fast path
/// still never consults them — only the slow paths do.
void BM_AllocateNoRegionSitesArmed(benchmark::State &State) {
  faults::HeapBlockAcquire.armProbabilityPercent(0, 7);
  faults::HeapHostAlloc.armProbabilityPercent(0, 7);
  VmConfig Config;
  Config.HeapBytes = 64u << 20;
  Vm TheVm(Config);
  TypeBuilder B(TheVm.types(), "LNode;");
  B.addRef("next");
  B.addScalar("value", 8);
  TypeId Node = B.build();
  MutatorThread &T = TheVm.mainThread();
  for (auto _ : State)
    benchmark::DoNotOptimize(TheVm.allocate(T, Node));
  disarmAllFailpoints();
}
BENCHMARK(BM_AllocateNoRegionSitesArmed);

} // namespace

GCASSERT_GBENCH_JSON_MAIN("failpoint_overhead")
