//===- hardening_overhead.cpp - Cost of the hardened heap mode ----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ABL-HARD (DESIGN.md §9): run-time cost of the hardened heap mode across
// the four collector families, Off vs Check vs Full. Check adds one
// classify-edge call per traced edge plus a header stamp per allocation;
// Full adds pointer plausibility before every header read and a structural
// audit per cycle. The acceptance bar tracks the paper's ~3% infrastructure
// overhead (§3.1.2): Check should stay in that neighborhood; Full is the
// belt-and-suspenders diagnosis mode and may cost more.
//
// Usage: hardening_overhead [--trials=N]   (default 10)
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

struct FamilyRow {
  CollectorKind Collector;
  const char *Name;
};

constexpr FamilyRow Families[] = {
    {CollectorKind::MarkSweep, "marksweep"},
    {CollectorKind::SemiSpace, "semispace"},
    {CollectorKind::MarkCompact, "markcompact"},
    {CollectorKind::Generational, "generational"},
};

constexpr HardeningMode Modes[] = {HardeningMode::Off, HardeningMode::Check,
                                   HardeningMode::Full};

/// A GC-heavy subset of the suite: hardening's cost is per traced edge and
/// per allocation, so the allocation-bound workloads bound it from above.
std::vector<std::string> hardeningWorkloads() {
  return {"compress", "db", "mtrt", "pseudojbb"};
}

} // namespace

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("hardening_overhead");
  Report.setConfig("trials", static_cast<int64_t>(Trials));
  Report.setTopology(/*GcThreads=*/1, /*MutatorThreads=*/1);

  outs() << "ABL-HARD: run-time overhead of the hardened heap mode "
            "(Off -> Check -> Full)\n";
  outs() << format("trials per cell: %d; GC threads: 1\n\n", Trials);
  outs() << format("%-14s %-12s %12s %13s %9s %13s %9s\n", "collector",
                   "benchmark", "off (ms)", "check ovh(%)", "+-90% CI",
                   "full ovh(%)", "+-90% CI");
  printRule();

  for (const FamilyRow &Family : Families) {
    std::vector<double> CheckRatios;
    std::vector<double> FullRatios;
    for (const std::string &Workload : hardeningWorkloads()) {
      // Interleave the three modes per trial (rotating the start) so
      // machine drift cancels out of the comparison, mirroring
      // runPairedTrials.
      ConfigSamples Samples[3];
      RecordingViolationSink Sink;
      for (int Trial = 0; Trial != Trials; ++Trial) {
        for (size_t I = 0; I != 3; ++I) {
          size_t M = (I + static_cast<size_t>(Trial)) % 3;
          HarnessOptions Options;
          Options.Sink = &Sink;
          Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
          Options.Collector = Family.Collector;
          Options.Hardening = Modes[M];
          RunResult Result =
              runWorkload(Workload, BenchConfig::Base, Options);
          Samples[M].TotalMs.add(Result.TotalMillis);
          Samples[M].GcMs.add(Result.GcMillis);
          Samples[M].MutatorMs.add(Result.MutatorMillis);
        }
      }
      ConfigSamples &Off = Samples[0];
      ConfigSamples &Check = Samples[1];
      ConfigSamples &Full = Samples[2];
      outs() << format(
          "%-14s %-12s %12.2f %13.2f %9.2f %13.2f %9.2f\n", Family.Name,
          Workload.c_str(), Off.TotalMs.mean(),
          overheadPercent(Off.TotalMs, Check.TotalMs),
          ratioConfidence(Off.TotalMs, Check.TotalMs),
          overheadPercent(Off.TotalMs, Full.TotalMs),
          ratioConfidence(Off.TotalMs, Full.TotalMs));
      outs().flush();
      CheckRatios.push_back(Check.TotalMs.mean() / Off.TotalMs.mean());
      FullRatios.push_back(Full.TotalMs.mean() / Off.TotalMs.mean());
      std::string Prefix = std::string(Family.Name) + "." + Workload;
      Report.addSeries(Prefix + ".total_ms.off", Off.TotalMs);
      Report.addSeries(Prefix + ".total_ms.check", Check.TotalMs);
      Report.addSeries(Prefix + ".total_ms.full", Full.TotalMs);
    }
    outs() << format("%-14s %-12s %12s %+12.2f%% %9s %+12.2f%%\n",
                     Family.Name, "geomean", "",
                     (geometricMean(CheckRatios) - 1.0) * 100.0, "",
                     (geometricMean(FullRatios) - 1.0) * 100.0);
    Report.addScalar(std::string(Family.Name) + ".geomean_check_ovh_pct",
                     (geometricMean(CheckRatios) - 1.0) * 100.0);
    Report.addScalar(std::string(Family.Name) + ".geomean_full_ovh_pct",
                     (geometricMean(FullRatios) - 1.0) * 100.0);
    printRule();
  }
  outs() << "bar: Check-mode geomean tracks the paper's ~3% "
            "infrastructure overhead (paper Fig. 2: +2.75%)\n";
  return Report.write() ? 0 : 1;
}
