//===- ablation_generational.cpp - §2.2's generational trade-off ----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ABL-GEN (DESIGN.md §4): the paper chose a full-heap MarkSweep collector
// because it "will check all assertions at every garbage collection. ... A
// generational collector, however, performs full-heap collections
// infrequently, allowing some assertions to go unchecked for long periods
// of time" (§2.2).
//
// This bench quantifies that trade-off with our generational collector
// (nursery + write barrier + remembered set, an extension — DESIGN.md §6):
// a request loop leaks one object per batch and asserts it dead. Under
// mark-sweep, every collection checks; under the generational collector,
// only major collections do, so the leak runs unnoticed across many minor
// collections — the price paid for much cheaper routine pauses.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/workloads/Common.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

struct Outcome {
  /// Batches serviced before the first violation report.
  int BatchesUntilDetection = -1;
  uint64_t TotalGcs = 0;
  uint64_t MinorGcs = 0;
  double MeanPauseMs = 0;
};

Outcome runScenario(CollectorKind Kind) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = Kind;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  TypeRegistry &Types = TheVm.types();

  TypeId ByteArray = ensureByteArrayType(Types);
  TypeBuilder RecordB(Types, "Lapp/Record;");
  uint32_t DataField = RecordB.addRef("data");
  TypeId Record = RecordB.build();

  RootedArray LeakCache(TheVm, T, 4096);
  uint64_t Leaked = 0;

  const int Batches = 400;
  Outcome Result;
  for (int Batch = 0; Batch != Batches; ++Batch) {
    // Service a batch of requests (pure nursery churn)...
    for (int I = 0; I != 2000; ++I) {
      HandleScope Scope(T);
      Local Data = Scope.handle(TheVm.allocate(T, ByteArray, 64));
      ObjRef NewRecord = TheVm.allocate(T, Record);
      NewRecord->setRef(DataField, Data.get());
      // ...retiring each record. One per batch lands in the leak cache.
      Engine.assertDead(NewRecord);
      if (I == 0)
        LeakCache.set(Leaked++, NewRecord);
    }
    if (Result.BatchesUntilDetection < 0 && !Sink.violations().empty())
      Result.BatchesUntilDetection = Batch;
  }

  const GcStats &Stats = TheVm.gcStats();
  Result.TotalGcs = Stats.Cycles;
  Result.MinorGcs = Stats.MinorCycles;
  Result.MeanPauseMs = Stats.Cycles
                           ? static_cast<double>(Stats.TotalGcNanos) / 1e6 /
                                 static_cast<double>(Stats.Cycles)
                           : 0;
  return Result;
}

} // namespace

int main() {
  JsonReport Report("ablation_generational");
  outs() << "Ablation: assertion checking under a full-heap vs a "
            "generational collector (§2.2)\n";
  outs() << "A request loop leaks one asserted-dead Record per batch; "
            "collections are driven\nby allocation pressure only.\n\n";
  outs() << format("%-14s %18s %10s %12s %14s\n", "collector",
                   "detected at batch", "GCs", "minor GCs",
                   "mean pause(ms)");
  printRule();

  auto DetectedAt = [](const Outcome &O) {
    return O.BatchesUntilDetection < 0 ? std::string("never")
                                       : std::to_string(O.BatchesUntilDetection);
  };
  Outcome MarkSweep = runScenario(CollectorKind::MarkSweep);
  outs() << format("%-14s %18s %10llu %12llu %14.3f\n", "marksweep",
                   DetectedAt(MarkSweep).c_str(),
                   static_cast<unsigned long long>(MarkSweep.TotalGcs),
                   static_cast<unsigned long long>(MarkSweep.MinorGcs),
                   MarkSweep.MeanPauseMs);

  Outcome Generational = runScenario(CollectorKind::Generational);
  outs() << format("%-14s %18s %10llu %12llu %14.3f\n", "generational",
                   DetectedAt(Generational).c_str(),
                   static_cast<unsigned long long>(Generational.TotalGcs),
                   static_cast<unsigned long long>(Generational.MinorGcs),
                   Generational.MeanPauseMs);

  auto Record = [&](const char *Name, const Outcome &O) {
    std::string Prefix = Name;
    Report.addScalar(Prefix + ".detected_at_batch",
                     static_cast<double>(O.BatchesUntilDetection));
    Report.addScalar(Prefix + ".total_gcs", static_cast<double>(O.TotalGcs));
    Report.addScalar(Prefix + ".minor_gcs", static_cast<double>(O.MinorGcs));
    Report.addScalar(Prefix + ".mean_pause_ms", O.MeanPauseMs);
  };
  Record("marksweep", MarkSweep);
  Record("generational", Generational);

  printRule();
  outs() << "Mark-sweep checks at every collection, so the leak surfaces "
            "at the first GC\nafter the bug. The generational collector "
            "services the same load with cheaper\n(minor) pauses but leaves "
            "the assertions unchecked until old-generation\npressure forces "
            "a major collection — exactly the paper's reason for \nevaluating "
            "on a full-heap collector.\n";
  return Report.write() ? 0 : 1;
}
