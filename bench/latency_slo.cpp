//===- latency_slo.cpp - Serving-suite tail-latency bench ----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The latency-SLO leg of the bench pipeline (DESIGN.md §14): runs the
// managed KV and order-entry OLTP request workloads under an open-loop
// Poisson load generator at a fixed offered rate — open loop so queueing
// behind stop-the-world pauses lands in the tail instead of being absorbed
// by a coordinated-omission feedback loop — and reports p50/p95/p99/p99.9
// and max request latency per workload × mutator-thread-count into
// BENCH_latency_slo.json.
//
// On hosts with >= 4 cores the report emits per-percentile ceilings
// (absolute lower-is-better SLO bounds enforced by tools/bench_compare even
// under --soft). On smaller hosts the ceilings are withheld: the 4-thread
// configurations are oversubscribed there, and the tail measures scheduler
// timeslices, not the runtime.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/SloReport.h"

#include <thread>

using namespace gcassert;
using namespace gcassert::bench;
using namespace gcassert::serving;

namespace {

/// Generous absolute bounds (milliseconds): a healthy run at this offered
/// rate sits far below them; only a pathological pause regression (or a
/// collector bug serializing the request path) crosses them.
constexpr double P99CeilingMs = 250.0;
constexpr double P999CeilingMs = 1000.0;

/// One measured configuration. The Base rows re-run the single-threaded
/// configurations with the assertion engine absent, so the report carries
/// the paper's question in SLO units: what do armed assertions cost the
/// tail at the same offered rate?
struct SloConfig {
  ServingWorkload Workload;
  unsigned Threads;
  BenchConfig Config;
};

const SloConfig Configs[] = {
    {ServingWorkload::Kv, 1, BenchConfig::WithAssertions},
    {ServingWorkload::Kv, 4, BenchConfig::WithAssertions},
    {ServingWorkload::Oltp, 1, BenchConfig::WithAssertions},
    {ServingWorkload::Oltp, 4, BenchConfig::WithAssertions},
    {ServingWorkload::Kv, 1, BenchConfig::Base},
    {ServingWorkload::Oltp, 1, BenchConfig::Base},
};

} // namespace

int main(int Argc, char **Argv) {
  int Trials = trialCount(Argc, Argv, 5);
  unsigned HostCores = std::thread::hardware_concurrency();
  bool EmitCeilings = HostCores >= 4;

  JsonReport Report("latency_slo");
  Report.setConfig("trials", static_cast<int64_t>(Trials));
  Report.setConfig("loop", "open");
  Report.setConfig("offered_rate_per_sec", static_cast<int64_t>(2000));
  Report.setConfig("requests_per_trial", static_cast<int64_t>(2000));
  Report.setConfig("collector", "marksweep");
  Report.setConfig("latency_basis", "scheduled-arrival (queueing included)");
  Report.setTopology(/*GcThreads=*/1, /*MutatorThreads=*/4);

  outs() << "Latency-SLO serving suite: open-loop tail latency\n";
  outs() << format("host cores: %u   trials per configuration: %d\n",
                   HostCores, Trials);
  outs() << format("offered rate: 2000 req/s   requests per trial: 2000   "
                   "ceilings: %s\n\n",
                   EmitCeilings ? "on" : "off (host has < 4 cores)");
  outs() << format("%-6s %8s %-7s %10s %10s %10s %10s %10s %8s\n", "wl",
                   "threads", "config", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                   "p99.9(ms)", "max (ms)", "w/pause");
  printRule();

  for (const SloConfig &C : Configs) {
    bool Assert = C.Config == BenchConfig::WithAssertions;
    SloTrialSamples Samples;
    for (int Trial = 0; Trial != Trials; ++Trial) {
      ServingOptions Options;
      Options.Workload = C.Workload;
      Options.Threads = C.Threads;
      Options.Loop = LoopMode::Open;
      Options.OfferedRatePerSec = 2000.0;
      Options.Requests = 2000;
      Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
      Options.Config = C.Config;
      ServingResult Result = runServing(Options);
      Samples.add(Result);
    }
    std::string Prefix = std::string(servingWorkloadName(C.Workload)) +
                         format(".t%u", C.Threads) +
                         (Assert ? "" : ".base");
    outs() << format("%-6s %8u %-7s %10.2f %10.2f %10.2f %10.2f %10.2f "
                     "%8llu\n",
                     servingWorkloadName(C.Workload), C.Threads,
                     Assert ? "assert" : "base", Samples.P50Ms.mean(),
                     Samples.P95Ms.mean(), Samples.P99Ms.mean(),
                     Samples.P999Ms.mean(), Samples.MaxMs.mean(),
                     static_cast<unsigned long long>(
                         Samples.OverlappingPause));
    addSloSeries(Report, Prefix, Samples);
    // SLO ceilings bind on what would ship: the assertion-armed rows.
    if (EmitCeilings && Assert)
      addSloCeilings(Report, Prefix, P99CeilingMs, P999CeilingMs);
  }

  outs() << "\nOpen-loop latency is measured from each request's scheduled "
            "arrival, so time\nspent queued behind a stop-the-world pause "
            "counts against the tail.\n";
  outs().flush();
  return Report.write() ? 0 : 1;
}
