//===- gcassert/gc/MarkCompactCollector.h - Sliding compactor --*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mark-compact collector over CompactHeap. The checking trace (with the
/// full assertion hook surface) is identical to MarkSweep's; afterwards a
/// relocation plan is computed, the engine's weak tables and every
/// reference are rewritten against it, and the live prefix slides down.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_MARKCOMPACTCOLLECTOR_H
#define GCASSERT_GC_MARKCOMPACTCOLLECTOR_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/CompactHeap.h"

namespace gcassert {

class MarkCompactCollector : public Collector {
public:
  MarkCompactCollector(CompactHeap &TheHeap, RootProvider &Roots)
      : Collector(Roots), TheHeap(TheHeap) {}

  void collect(const char *Cause) override;

private:
  template <bool EnableChecks, bool RecordPathsT> void runCycle();

  CompactHeap &TheHeap;
};

} // namespace gcassert

#endif // GCASSERT_GC_MARKCOMPACTCOLLECTOR_H
