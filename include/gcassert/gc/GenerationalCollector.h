//===- gcassert/gc/GenerationalCollector.h - Two-gen collector -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-generation collector over GenerationalHeap: frequent minor
/// collections evacuate the nursery into the old generation (guided by the
/// write-barrier remembered set), and occasional major collections run the
/// full mark-sweep cycle — which is where GC assertions are checked.
///
/// This reproduces the paper's §2.2 observation: under a generational
/// collector "some assertions go unchecked for long periods of time",
/// because only full-heap collections run the checking trace. Explicit
/// collections (Vm::collectNow) are always major.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_GENERATIONALCOLLECTOR_H
#define GCASSERT_GC_GENERATIONALCOLLECTOR_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/GenerationalHeap.h"

namespace gcassert {

class GenerationalCollector : public Collector {
public:
  GenerationalCollector(GenerationalHeap &TheHeap, RootProvider &Roots)
      : Collector(Roots), TheHeap(TheHeap) {}

  /// Allocation-failure collections are minor unless the old generation is
  /// too full to absorb another nursery; explicit collections are major.
  void collect(const char *Cause) override;

  /// Runs one minor (nursery-only) collection. No assertions are checked;
  /// the engine's tables are translated via onMinorGcComplete.
  void collectMinor();

  /// Runs one major collection: the full checking mark-sweep over the
  /// whole graph, the old generation's sweep, then a mark-driven nursery
  /// evacuation (exactly the objects the checking trace marked survive).
  void collectMajor();

private:
  /// Re-traces the nursery from roots and the remembered set (minor
  /// collections, where no full-graph mark information exists).
  void evacuateNursery();

  /// Promotes exactly the marked nursery objects (major collections,
  /// after the full checking trace) — including ownership-phase-retained
  /// objects no root path reaches.
  void evacuateNurseryMarked();

  GenerationalHeap &TheHeap;
};

} // namespace gcassert

#endif // GCASSERT_GC_GENERATIONALCOLLECTOR_H
