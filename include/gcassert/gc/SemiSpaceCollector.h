//===- gcassert/gc/SemiSpaceCollector.h - Copying collector -----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A copying collector over SemiSpaceHeap with the same assertion hooks as
/// MarkSweep. The paper claims its technique "will work with any tracing
/// collector" (§2.2); this collector demonstrates the claim: visiting an
/// object means evacuating it and the mark test becomes the forwarding test,
/// but the assertion checks and the path-recording worklist are unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_SEMISPACECOLLECTOR_H
#define GCASSERT_GC_SEMISPACECOLLECTOR_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/SemiSpaceHeap.h"

namespace gcassert {

class SemiSpaceCollector : public Collector {
public:
  SemiSpaceCollector(SemiSpaceHeap &TheHeap, RootProvider &Roots)
      : Collector(Roots), TheHeap(TheHeap) {}

  void collect(const char *Cause) override;

private:
  template <bool EnableChecks, bool RecordPathsT> void runCycle();

  SemiSpaceHeap &TheHeap;
};

} // namespace gcassert

#endif // GCASSERT_GC_SEMISPACECOLLECTOR_H
