//===- gcassert/gc/MarkSweepCollector.h - Mark-sweep collector --*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full-heap MarkSweep collector — the configuration the paper evaluates
/// ("We implemented these assertions in Jikes RVM 3.0.0 using the MarkSweep
/// collector", §2.2). Works over a FreeListHeap.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_MARKSWEEPCOLLECTOR_H
#define GCASSERT_GC_MARKSWEEPCOLLECTOR_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/FreeListHeap.h"

namespace gcassert {

class MarkSweepCollector : public Collector {
public:
  MarkSweepCollector(FreeListHeap &TheHeap, RootProvider &Roots)
      : Collector(Roots), TheHeap(TheHeap) {}

  void collect(const char *Cause) override;

private:
  FreeListHeap &TheHeap;
};

} // namespace gcassert

#endif // GCASSERT_GC_MARKSWEEPCOLLECTOR_H
