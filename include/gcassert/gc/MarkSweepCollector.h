//===- gcassert/gc/MarkSweepCollector.h - Mark-sweep collector --*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full-heap MarkSweep collector — the configuration the paper evaluates
/// ("We implemented these assertions in Jikes RVM 3.0.0 using the MarkSweep
/// collector", §2.2). Works over a FreeListHeap.
///
/// Besides the atomic collect() every collector provides, this family can
/// run a cycle *incrementally* (DESIGN.md §15): a snapshot pause that fixes
/// the traced graph, budgeted mark slices interleaved with mutation, and a
/// short terminal pause that checks and sweeps. The Vm's allocation tick
/// drives the slice schedule; the assertion results are bit-for-bit those of
/// a stop-the-world collection at the snapshot pause.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_MARKSWEEPCOLLECTOR_H
#define GCASSERT_GC_MARKSWEEPCOLLECTOR_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/FreeListHeap.h"

#include <memory>

namespace gcassert {

namespace detail {
class IncrementalCycleBase;
}

class MarkSweepCollector : public Collector {
public:
  MarkSweepCollector(FreeListHeap &TheHeap, RootProvider &Roots);
  ~MarkSweepCollector() override;

  /// Runs one whole collection. With an incremental cycle in flight, that
  /// means finishing it (final drain + checks + sweep in this one pause) —
  /// the snapshot was taken when the cycle began, so this is the collection
  /// the cycle has been running all along. Otherwise a normal atomic cycle.
  void collect(const char *Cause) override;

  /// \name Incremental marking (DESIGN.md §15)
  /// The Vm calls all of these with the world stopped (slices are short
  /// stop-the-world pauses; there is no concurrent marking). A cycle is:
  /// incrementalBegin, then markStep while incrementalHasWork, then
  /// finishCycle — with the world running between calls. The caller owns
  /// the same pre-collection duties as for collect() only where noted.
  /// @{

  /// True while a cycle is in flight (begun, not yet finished).
  bool incrementalActive() const { return Active != nullptr; }

  /// True while the in-flight cycle has marking left. False once the
  /// worklist drains — the caller should proceed to finishCycle (which is
  /// cheap at that point: checks + sweep only).
  bool incrementalHasWork() const;

  /// Snapshot pause: begins a cycle (roots scanned, SATB barrier + black
  /// allocation armed). Requires no cycle in flight and, under hardening,
  /// a synced checksum cache (same as collect()). TLABs need not be
  /// retired — nothing sweeps here.
  void incrementalBegin(const char *Cause);

  /// One budgeted mark slice (Config.MarkBudget objects; 0 = unbounded).
  void markStep();

  /// Terminal pause: final drain, assertion checks, sweep, barrier
  /// teardown. Requires the same caller duties as collect() (TLABs
  /// retired — the sweep re-threads abandoned cells).
  void finishCycle();
  /// @}

private:
  /// Folds one stop-the-world pause into the cycle's accounting:
  /// accumulates toward the cycle's total GC time and maxes into
  /// Stats.MaxPauseNanos (incremental cycles record per-pause maxima;
  /// see finishCycleTiming's RecordMaxPause).
  void notePause(uint64_t PauseNanos);

  FreeListHeap &TheHeap;
  /// The in-flight incremental cycle, or null.
  std::unique_ptr<detail::IncrementalCycleBase> Active;
  /// GC work time accumulated across the in-flight cycle's pauses, so the
  /// terminal finishCycleTiming reports the cycle's total work (not its
  /// wall-clock span, which includes mutator time between slices).
  uint64_t CyclePauseNanos = 0;
};

} // namespace gcassert

#endif // GCASSERT_GC_MARKSWEEPCOLLECTOR_H
