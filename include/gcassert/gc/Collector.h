//===- gcassert/gc/Collector.h - Collector interface -------------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract collector interface plus the root-enumeration contract the
/// runtime fulfills, and the cumulative GC statistics the benchmark harness
/// reads (the paper reports GC time separately from total time).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_COLLECTOR_H
#define GCASSERT_GC_COLLECTOR_H

#include "gcassert/gc/TraceHooks.h"
#include "gcassert/heap/Hardening.h"
#include "gcassert/heap/Object.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace gcassert {

class WorkerPool;

/// Enumerates strong root slots. The runtime (global roots + every thread's
/// handle slots) implements this. Slots are passed by address so a moving
/// collector can update them.
class RootProvider {
public:
  virtual ~RootProvider();

  virtual void
  forEachRootSlot(const std::function<void(ObjRef *)> &Fn) = 0;
};

/// Tuning knobs shared by all collectors.
struct GcConfig {
  /// Number of GC worker threads for the parallel mark and sweep phases of
  /// the mark-sweep family (MarkSweep, and the major collections of
  /// Generational). 1 (the default) runs the original sequential collector
  /// bit-for-bit; higher values spawn Threads-1 parked worker threads on
  /// first use. Cycles that need §2.7 path recording always run
  /// sequentially regardless of this knob (see DESIGN.md, "Parallel
  /// collection"). The copying collectors ignore it.
  unsigned Threads = 1;

  /// Hardened heap mode (DESIGN.md §9). Off: no corruption checking, no
  /// per-allocation stamping — the pre-hardening allocation and trace
  /// paths, bit for bit. Check: header checksums, poison-on-free, and
  /// per-edge validation piggybacked on the trace. Full: Check plus
  /// pointer-plausibility on every edge and structural audits (free
  /// lists, remembered set) after every cycle.
  HardeningMode Hardening = HardeningMode::Off;

  /// What to do when the hardened heap detects corruption: abort with
  /// diagnostics, quarantine and keep running, or hand each defect to
  /// OnDefectCallback (which also quarantines).
  HardeningPolicy OnDefect = HardeningPolicy::Quarantine;

  /// Invoked per defect under HardeningPolicy::Callback.
  HeapHardening::DefectCallback OnDefectCallback;

  /// \name Incremental marking (mark-sweep family only, DESIGN.md §15)
  /// @{

  /// Enables snapshot-at-the-beginning incremental marking: cycles begun
  /// through MarkSweepCollector::incrementalBegin (the Vm's slice scheduler
  /// drives this) mark in budgeted stop-the-world slices interleaved with
  /// mutation, with a Yuasa-style deletion barrier keeping the trace exact,
  /// and finish with a short terminal pause that runs the post-trace checks
  /// and the sweep. collect() still completes a whole cycle — it finishes
  /// the active one, or runs begin-to-terminal back to back — so every
  /// trigger path stays correct. Other collector families ignore the knob
  /// (the generational heap owns the store barrier the snapshot needs).
  bool Incremental = false;

  /// Objects scanned per incremental mark slice. An object-count budget is
  /// deterministic across hosts (the fuzzer's differential matrix depends
  /// on that); at the default ~512 a slice is tens of microseconds. 0 means
  /// unbounded — the first slice finishes the whole mark.
  uint64_t MarkBudget = 512;

  /// Allocations per mutator thread between incremental pacing polls
  /// (Vm::allocate ticks a per-thread countdown; on expiry it runs a mark
  /// slice, or begins a cycle when IncrementalTriggerOccupancy says so).
  uint32_t IncrementalSliceAllocs = 64;

  /// Heap occupancy (BytesInUse / BytesCapacity) at or above which the
  /// pacing poll begins a new incremental cycle on its own, so marking is
  /// already spread across slices before allocation failure would force a
  /// full synchronous cycle. 0 (the default) disables the trigger: cycles
  /// begin only at explicit collections and allocation failure.
  double IncrementalTriggerOccupancy = 0.0;
  /// @}
};

/// Cumulative statistics across all collections of one collector.
struct GcStats {
  uint64_t Cycles = 0;
  /// Wall time spent inside collect(), nanoseconds.
  uint64_t TotalGcNanos = 0;
  /// Portion of TotalGcNanos spent in the ownership (pre-root) phase.
  uint64_t OwnershipNanos = 0;
  /// Portion spent tracing from the roots (the mark phase). Currently
  /// recorded by the mark-sweep family only; the copying collectors leave
  /// it at zero.
  uint64_t MarkNanos = 0;
  /// Portion spent reclaiming (the sweep phase). Mark-sweep family only.
  uint64_t SweepNanos = 0;
  /// Objects visited (marked or copied) across all cycles.
  uint64_t ObjectsVisited = 0;
  /// Bytes reclaimed across all cycles.
  uint64_t BytesReclaimed = 0;
  /// Duration of the most recent cycle, nanoseconds.
  uint64_t LastGcNanos = 0;
  /// Generational collectors only: how many of Cycles were minor (nursery)
  /// collections. Full-heap collectors leave this at zero.
  uint64_t MinorCycles = 0;
  /// Successful steals by the parallel mark phase's work-stealing deques
  /// across all cycles. Zero for sequential cycles and the copying
  /// collectors.
  uint64_t Steals = 0;

  /// \name Incremental marking (DESIGN.md §15)
  /// @{

  /// Cycles that ran incrementally (snapshot pause + mark slices +
  /// terminal pause) rather than as one atomic stop-the-world collection.
  /// Also counted in Cycles.
  uint64_t IncrementalCycles = 0;
  /// Budgeted mark slices run across all incremental cycles (snapshot and
  /// terminal pauses not included).
  uint64_t MarkSlices = 0;
  /// Longest single stop-the-world pause, nanoseconds: for atomic
  /// collections the whole cycle, for incremental cycles the longest of
  /// the snapshot pause, any one slice, and the terminal pause. This is
  /// the number bounded-pause collection exists to shrink.
  uint64_t MaxPauseNanos = 0;
  /// Slots logged by the SATB deletion barrier across all incremental
  /// cycles (mutator stores that overwrote a snapshot-era value).
  uint64_t SatbLoggedSlots = 0;
  /// @}

  /// \name Resilience counters
  /// Accounting for the fault-tolerance layer (DESIGN.md §8): how often
  /// the runtime had to escalate, degrade, or route around a failure.
  /// @{

  /// Emergency full collections run by Vm::allocateSlowPath's cascade
  /// (stage 2+: a first collect-and-retry already failed).
  uint64_t EmergencyCollections = 0;
  /// Registered OOM handlers that freed something and triggered a retry.
  uint64_t OomHandlerRuns = 0;
  /// Cycles the assertion engine ran with §2.7 path recording shed.
  uint64_t PathShedCycles = 0;
  /// Cycles the engine ran at the core-checks-only level (per-assertion
  /// bookkeeping shed too). Always <= PathShedCycles.
  uint64_t BookkeepingShedCycles = 0;
  /// Pre-flight occupancy guards that fired (semispace evacuation /
  /// generational promotion) and rerouted the cycle.
  uint64_t GuardTrips = 0;
  /// GC worker threads that failed to spawn; the pool degraded to fewer
  /// workers instead of aborting.
  uint64_t WorkerStartFailures = 0;
  /// Objects ever quarantined by the hardened heap (cumulative — entries
  /// whose storage a moving collector later reclaimed still count).
  uint64_t Quarantined = 0;
  /// Heap defects the hardened heap has detected (all kinds).
  uint64_t HeapDefects = 0;
  /// @}
};

/// A stop-the-world tracing collector.
///
/// The assertion infrastructure is attached with setHooks(): a collector
/// with hooks runs the checking trace loop ("Infrastructure" /
/// "WithAssertions" in the paper's figures); without hooks it runs a loop
/// with no per-object checks at all ("Base").
class Collector {
public:
  explicit Collector(RootProvider &Roots);
  virtual ~Collector();

  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;

  /// Replaces the GC configuration. Takes effect at the next collection;
  /// the worker pool is re-sized lazily. Thread count 0 is clamped to 1.
  void setGcConfig(const GcConfig &NewConfig);
  const GcConfig &gcConfig() const { return Config; }

  /// Runs one stop-the-world collection. \p Cause is a short label for
  /// logging ("allocation failure", "explicit", ...).
  virtual void collect(const char *Cause) = 0;

  /// Installs (or removes, with null) the assertion engine's trace hooks.
  void setHooks(TraceHooks *NewHooks) { Hooks = NewHooks; }
  TraceHooks *hooks() const { return Hooks; }

  /// Enables or disables §2.7 path recording. Only meaningful when hooks
  /// are installed; on by default, can be turned off to measure its cost
  /// (the ABL-PATH ablation).
  void setPathRecording(bool Enable) { RecordPaths = Enable; }
  bool pathRecording() const { return RecordPaths; }

  const GcStats &stats() const { return Stats; }

  /// \name Resilience accounting
  /// Narrow mutators for the stats() counters owned by other layers: the
  /// runtime's emergency cascade and the engine's degradation ladder report
  /// here so every resilience event lands in one place.
  /// @{
  void noteEmergencyCollection() { ++Stats.EmergencyCollections; }
  void noteOomHandlerRun() { ++Stats.OomHandlerRuns; }
  /// One cycle ran degraded: paths shed, and with \p BookkeepingToo the
  /// per-assertion bookkeeping as well.
  void noteShedCycle(bool BookkeepingToo) {
    ++Stats.PathShedCycles;
    if (BookkeepingToo)
      ++Stats.BookkeepingShedCycles;
  }
  /// @}

  /// Attaches (or detaches, with null) the hardened-heap subsystem: the
  /// trace loops validate every edge through it and collect() finishes
  /// each cycle with finishHardenedCycle().
  void setHardening(HeapHardening *H) { Hard = H; }
  HeapHardening *hardening() const { return Hard; }

protected:
  /// Cycle epilogue under hardening: in Full mode runs the structural
  /// audits (with repair) over \p TheHeap, routing any defects through the
  /// hardening policy, then mirrors the hardening counters into stats().
  void finishHardenedCycle(Heap &TheHeap);

  /// Common cycle epilogue: accrues wall time from \p StartNanos into
  /// stats() (LastGcNanos, TotalGcNanos, Cycles, MinorCycles) and forwards
  /// the updated stats into the telemetry metrics registry — the pause
  /// histogram, the "gc.*" counter mirror, and the occupancy gauge read
  /// from \p TheHeap. Every collector family's collect() funnels through
  /// here, so GcStats and the metrics snapshot can never drift apart.
  ///
  /// \p RecordMaxPause: atomic collections are one pause, so the elapsed
  /// time also feeds Stats.MaxPauseNanos. Incremental cycles pass false —
  /// their elapsed time spans several short pauses, and the incremental
  /// engine maxes each pause into the stat individually.
  void finishCycleTiming(uint64_t StartNanos, Heap &TheHeap,
                         bool MinorCycle = false, bool RecordMaxPause = true);

  /// The worker pool for parallel phases, or null when Config.Threads <= 1.
  /// Spawned on first use and parked between cycles; re-spawned when the
  /// configured thread count changes.
  WorkerPool *workerPool();

  RootProvider &Roots;
  TraceHooks *Hooks = nullptr;
  HeapHardening *Hard = nullptr;
  bool RecordPaths = true;
  GcConfig Config;
  GcStats Stats;

private:
  std::unique_ptr<WorkerPool> Pool;
};

} // namespace gcassert

#endif // GCASSERT_GC_COLLECTOR_H
