//===- gcassert/gc/TraceHooks.h - Collector/assertion interface -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between the collectors and the assertion engine.
///
/// The paper piggybacks assertion checking on the collector's tracing loop
/// (§2). The fast checks — header bits, tracked-type instance counts — are
/// performed inline by the trace core; everything rare (a violation, an
/// ownee/owner encounter in the ownership phase) escapes to these virtual
/// hooks. A collector built without hooks ("Base" in the paper's Figures 2-5)
/// compiles a trace loop with no checks at all.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_TRACEHOOKS_H
#define GCASSERT_GC_TRACEHOOKS_H

#include "gcassert/heap/Object.h"

#include <cstdint>
#include <vector>

namespace gcassert {

/// How hard the runtime's emergency allocation cascade is leaning on the
/// heap (see Vm::allocateSlowPath). Delivered to the assertion engine via
/// TraceHooks::onMemoryPressure so it can shed optional work.
enum class MemoryPressure : uint8_t {
  /// A first retry failed; an emergency full collection is about to run.
  High,
  /// The heap is still exhausted after the emergency collection; the
  /// configured OomPolicy is about to engage.
  Critical,
};

/// Which tracing phase the collector is in.
///
/// The ownership phase (paper §2.5.2, "Phase 1") traces from owner objects
/// before the roots are scanned; the root phase is the normal collection
/// trace.
enum class TracePhase : uint8_t { Ownership, Roots };

/// What the trace core should do with an owner/ownee-flagged object first
/// encountered during the ownership phase.
enum class PreRootAction : uint8_t {
  /// Keep scanning through the object.
  Continue,
  /// Mark (or copy) the object but do not scan its children now. Used to
  /// truncate at ownees and to stop at other owners.
  Truncate,
  /// Do not visit the object at all. Used when a scan reaches the very
  /// owner it started from through a cycle: the owner's liveness must come
  /// from the root scan, never from its own data structure.
  Skip,
};

/// Engine-facing view of one collection's liveness result, valid during
/// TraceHooks::onTraceComplete (after tracing, before dead storage is
/// reclaimed).
class PostTraceContext {
public:
  virtual ~PostTraceContext();

  /// Returns the object's post-GC address: the object itself (mark-sweep),
  /// its to-space copy (semispace), its post-slide address (mark-compact),
  /// or null if it was found dead. Engine tables that hold weak references
  /// use this to prune and rewrite. The contract requires the returned
  /// address to be *dereferenceable* — the engine reads headers and clears
  /// ownership flags through it — so a moving collector must not invoke
  /// onTraceComplete until survivors occupy their final addresses.
  virtual ObjRef currentAddress(ObjRef Obj) const = 0;

  /// The collection cycle number, for violation records.
  virtual uint64_t cycle() const = 0;
};

/// Engine-facing driver for the ownership phase. The engine decides *what*
/// to scan (owners, then deferred ownees); the collector performs the actual
/// tracing work through this interface.
class OwnershipScanDriver {
public:
  virtual ~OwnershipScanDriver();

  /// Scans the fields of \p Owner and drains all work that becomes
  /// reachable, without marking \p Owner itself (paper §2.5.2: the owner's
  /// own liveness must come from the root scan).
  virtual void scanChildrenOf(ObjRef Owner) = 0;

  /// Scans \p Obj (a deferred ownee) like a normal traced object.
  virtual void scanObject(ObjRef Obj) = 0;

  /// Translates \p Obj to its current address under a moving collector
  /// (identity for mark-sweep). Returns null only if \p Obj is a from-space
  /// original that was never visited, which cannot happen for queued work.
  virtual ObjRef resolve(ObjRef Obj) const = 0;
};

/// Callbacks from the trace core into the assertion engine. All paths are
/// object chains from the scan origin (a root or an owner) to the offending
/// object; they are materialized only when a violation actually fires.
class TraceHooks {
public:
  virtual ~TraceHooks();

  /// A collection cycle is starting. The engine resets per-cycle state
  /// (instance counts, Owned bits, report deduplication).
  virtual void onGcBegin(uint64_t Cycle) = 0;

  /// The collector is ready to run the ownership phase (before root
  /// scanning). The engine iterates its owners through \p Driver. Only
  /// called when hooks are installed; the engine returns immediately if no
  /// ownership assertions are registered.
  virtual void runOwnershipPhase(OwnershipScanDriver &Driver) = 0;

  /// A DEAD-flagged object was found reachable. \p Path runs from the scan
  /// origin to the object itself (inclusive).
  virtual void onDeadReachable(ObjRef Obj, const std::vector<ObjRef> &Path,
                               TracePhase Phase) = 0;

  /// If true, the tracer nulls the reference to a DEAD-flagged object
  /// instead of tracing through it — the paper's "force the assertion to be
  /// true" reaction (§2.6).
  virtual bool severDeadReferences() const = 0;

  /// An UNSHARED-flagged object was reached through a second path.
  virtual void onUnsharedShared(ObjRef Obj,
                                const std::vector<ObjRef> &Path) = 0;

  /// The root phase reached an ownee that the ownership phase did not mark
  /// as owned: the object is not reachable from its owner (§2.5.2 Phase 2).
  virtual void onUnownedOwnee(ObjRef Obj,
                              const std::vector<ObjRef> &Path) = 0;

  /// Ownership-phase classification of a first-encountered object whose
  /// header carries the Owner or Ownee flag.
  virtual PreRootAction classifyPreRoot(ObjRef Obj) = 0;

  /// Tracing is complete and every survivor sits at its final,
  /// dereferenceable post-GC address (a moving collector calls this only
  /// after copying or sliding). The engine checks instance limits, prunes
  /// tables of dead entries, and reports deferred violations.
  virtual void onTraceComplete(PostTraceContext &Ctx) = 0;

  /// A generational *minor* collection finished: nursery survivors moved to
  /// the old generation; no assertions were checked (the paper's §2.2
  /// observation — a generational collector checks assertions only at
  /// full-heap collections). The engine must translate its weak tables
  /// through \p Ctx (nursery objects forward or die; old objects are
  /// stable).
  virtual void onMinorGcComplete(PostTraceContext &Ctx) = 0;

  /// Degradation gate for §2.7 path recording: collectors consult this at
  /// the start of each cycle and skip path recording when it returns false,
  /// even if Collector::setPathRecording is on. The engine's degradation
  /// ladder sheds paths first under memory pressure; the default keeps
  /// them.
  virtual bool allowPathRecording() const { return true; }

  /// Memory-pressure notice from the runtime's emergency cascade or a
  /// collector's pre-flight occupancy guard. Default: ignore.
  virtual void onMemoryPressure(MemoryPressure Pressure) { (void)Pressure; }

  /// An incremental cycle opened its SATB snapshot (DESIGN.md §15): the
  /// world is stopped, onGcBegin and the ownership phase are about to run,
  /// and the world will then resume with the cycle still active. Between
  /// open and close the engine defers assertion registrations that would
  /// mutate in-flight trace state (they apply at the terminal pause, after
  /// the sweep, and take effect at the next cycle — exactly the cycle a
  /// stop-the-world run would first check them in). Default: ignore, for
  /// atomic collections and hook implementations that predate incremental
  /// marking.
  virtual void onSnapshotOpen() {}

  /// The incremental cycle's terminal pause finished (checks ran, sweep
  /// done). The engine applies registrations deferred since
  /// onSnapshotOpen(). Called before the world resumes. Default: ignore.
  virtual void onSnapshotClose() {}
};

} // namespace gcassert

#endif // GCASSERT_GC_TRACEHOOKS_H
