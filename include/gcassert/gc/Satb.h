//===- gcassert/gc/Satb.h - SATB deletion-barrier slot log ------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot-at-the-beginning slot log behind incremental mark-sweep
/// (DESIGN.md §15).
///
/// While an incremental cycle is active, a SatbSnapshot is installed as the
/// process store barrier. It implements an *exact virtual snapshot*: for
/// every reference slot the mutators overwrite during the cycle it records
/// the slot's value as of the first overwrite — which, because the log opens
/// at the snapshot pause, is the slot's snapshot-time value. The tracer
/// resolves every slot it scans through snapshotValue(), so the incremental
/// trace walks exactly the object graph that existed at the snapshot pause,
/// no matter how the mutators rewire the heap between slices.
///
/// This is stronger than the classic Yuasa barrier (which greys deleted
/// values and over-approximates liveness): the assertion checks piggybacked
/// on the trace — dead, unshared encounter counts, ownership reachability,
/// census totals — produce bit-for-bit the violations a stop-the-world
/// collection at the snapshot point would have produced.
///
/// Concurrency: mutators append under the log mutex while the world runs;
/// the tracer reads during stop-the-world mark slices. Reads take the mutex
/// too — slices run with every mutator parked, so the lock is uncontended
/// there and merely keeps the happens-before story trivial under TSan.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_SATB_H
#define GCASSERT_GC_SATB_H

#include "gcassert/heap/Object.h"

#include <mutex>
#include <unordered_map>

namespace gcassert {

/// The deletion-barrier slot log for one incremental marking cycle.
/// activate()/deactivate() run inside stop-the-world pauses (the snapshot
/// and terminal pauses), so installation is ordered against every mutator
/// store by the safepoint rendezvous.
class SatbSnapshot final : public StoreBarrier {
public:
  ~SatbSnapshot() override;

  /// Installs this log as the process store barrier. Stop-the-world only;
  /// fails fatally if another barrier (a generational heap) owns the hook.
  void activate();

  /// Uninstalls and clears the log. Stop-the-world only.
  void deactivate();

  bool active() const { return Active; }

  /// StoreBarrier: first overwrite of a slot logs its snapshot-time value.
  void recordStore(Object *Holder, Object **Slot, Object *Old,
                   Object *New) override;

  /// The snapshot-time value of \p Slot, given its current contents
  /// \p Current: the logged old value if the mutators overwrote the slot
  /// since the snapshot pause, else \p Current.
  ObjRef snapshotValue(ObjRef *Slot, ObjRef Current) const {
    std::lock_guard<std::mutex> L(Mutex);
    auto It = Log.find(Slot);
    return It == Log.end() ? Current : It->second;
  }

  /// True when the mutators overwrote \p Slot after the snapshot pause. The
  /// tracer must not write through such a slot (severing a dead reference
  /// there would clobber the mutator's newer value).
  bool overwrittenSinceSnapshot(ObjRef *Slot) const {
    std::lock_guard<std::mutex> L(Mutex);
    return Log.find(Slot) != Log.end();
  }

  /// Slots logged so far this cycle.
  size_t loggedSlots() const {
    std::lock_guard<std::mutex> L(Mutex);
    return Log.size();
  }

private:
  mutable std::mutex Mutex;
  /// slot -> value at the snapshot pause (first-overwrite-wins).
  std::unordered_map<Object **, Object *> Log;
  bool Active = false;
};

} // namespace gcassert

#endif // GCASSERT_GC_SATB_H
