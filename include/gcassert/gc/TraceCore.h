//===- gcassert/gc/TraceCore.h - The tracing loop ----------------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceCore is the collector-independent tracing loop, templated on:
///
///  * SpaceOpsT — how the underlying space visits an object (set the mark
///    bit for mark-sweep; evacuate and forward for semispace);
///  * EnableChecks — whether the assertion infrastructure's per-object
///    checks are compiled in ("Infrastructure"/"WithAssertions" in the
///    paper's figures) or not ("Base");
///  * RecordPaths — whether the worklist maintains the paper's §2.7 path
///    reconstruction: the currently-scanned object stays on the worklist
///    with its pointer's low-order bit set, so the tagged subsequence of the
///    worklist is always the exact path from the scan origin to the current
///    object. Objects are 8-byte aligned, so the low bit is free — the same
///    trick the paper plays with Jikes RVM's word-aligned references.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_GC_TRACECORE_H
#define GCASSERT_GC_TRACECORE_H

#include "gcassert/gc/Satb.h"
#include "gcassert/gc/TraceHooks.h"
#include "gcassert/heap/Hardening.h"
#include "gcassert/heap/TypeRegistry.h"
#include "gcassert/support/Compiler.h"

#include <vector>

namespace gcassert {

/// SpaceOps for a non-moving mark-bit space (FreeListHeap + MarkSweep).
struct MarkSpaceOps {
  bool isVisited(ObjRef Obj) const { return Obj->header().isMarked(); }

  /// Marks \p Obj; non-moving, so the address is unchanged.
  ObjRef visitNew(ObjRef Obj) const {
    Obj->header().setMarked();
    return Obj;
  }

  /// Address of an already-visited object (unchanged).
  ObjRef visitedAddress(ObjRef Obj) const { return Obj; }
};

/// The tracing work engine shared by all collectors.
template <typename SpaceOpsT, bool EnableChecks, bool RecordPaths>
class TraceCore {
public:
  TraceCore(SpaceOpsT Space, TypeRegistry &Types, TraceHooks *Hooks,
            HeapHardening *Hard = nullptr)
      : Space(Space), Types(Types), Hooks(Hooks), Hard(Hard) {
    assert((!EnableChecks || Hooks) && "checks enabled without hooks");
  }

  void setPhase(TracePhase NewPhase) { Phase = NewPhase; }

  /// Attaches the SATB slot log of an active incremental cycle: every slot
  /// this tracer scans resolves to its snapshot-time value, and severs are
  /// suppressed on slots the mutators overwrote since the snapshot. Null
  /// (the default) restores plain stop-the-world reads.
  void setSnapshot(const SatbSnapshot *S) { Snapshot = S; }

  /// Processes one reference slot: visits the referent if new, updates the
  /// slot under a moving space, and performs the assertion checks.
  void processSlot(ObjRef *Slot) {
    ObjRef Obj = *Slot;
    if (GCA_UNLIKELY(Snapshot != nullptr))
      Obj = Snapshot->snapshotValue(Slot, Obj);
    if (!Obj)
      return;

    // Hardened mode: the paper's insight that the trace already touches
    // every live edge makes this the one place a full integrity sweep
    // costs a single predictable branch. Every edge passes the screen
    // (which in Full mode validates the whole header before isVisited may
    // read a fake flag word); Check mode defers header validation to the
    // first encounter below — a damaged object normally enters the cycle
    // unmarked, so whichever edge reaches it first detects it, and later
    // edges trip the quarantine screen. The exception — a fake flag word
    // that impersonates a visited object — is refuted by the type-id gate
    // on the visited path below. A defective edge is severed so the
    // corruption cannot propagate through the rest of the cycle.
    if (GCA_UNLIKELY(Hard != nullptr)) {
      EdgeVerdict V = Hard->screenEdge(Obj);
      if (GCA_UNLIKELY(V != EdgeVerdict::Ok)) {
        Hard->reportEdgeDefect(V, Obj, capturePath(Obj));
        severSlot(Slot);
        return;
      }
    }

    if (GCA_LIKELY(!Space.isVisited(Obj))) {
      if (GCA_UNLIKELY(Hard != nullptr) && !Hard->full()) {
        EdgeVerdict V = Hard->classifyObjectHeader(Obj);
        if (GCA_UNLIKELY(V != EdgeVerdict::Ok)) {
          Hard->reportEdgeDefect(V, Obj, capturePath(Obj));
          severSlot(Slot);
          return;
        }
      }
      if constexpr (EnableChecks) {
        if (!checkFirstEncounter(Obj, Slot))
          return; // Reference was severed.
      }
      ObjRef NewAddr = Space.visitNew(Obj);
      if (NewAddr != Obj)
        *Slot = NewAddr;
      ++Visited;
      push(NewAddr);
      return;
    }

    // Check mode: the first-encounter validation above never ran if the
    // fake flag word of a scribbled reference impersonates a visited (or
    // forwarded) object — visitedAddress would then read a bogus forwarding
    // pointer out of payload bytes. One type-id compare refutes such fakes
    // before any further header bit is trusted; genuinely visited objects
    // were fully validated when first reached this cycle.
    if (GCA_UNLIKELY(Hard != nullptr) && !Hard->full() &&
        GCA_UNLIKELY(!Hard->plausibleVisitedHeader(Obj))) {
      Hard->reportEdgeDefect(EdgeVerdict::BadTypeId, Obj, capturePath(Obj));
      severSlot(Slot);
      return;
    }

    ObjRef NewAddr = Space.visitedAddress(Obj);
    if (NewAddr != Obj)
      *Slot = NewAddr;
    if constexpr (EnableChecks) {
      if (GCA_UNLIKELY(NewAddr->header().testFlag(HF_Unshared))) {
        // Check mode defers header validation to the first (unvisited)
        // encounter, so a scribbled reference whose fake flag word shows
        // both the visited bit and HF_Unshared arrives here without ever
        // having been classified. Validate before handing the "object" to
        // the engine; a bad header is a defective edge like any other.
        // Cold: only unshared-flagged re-encounters pay the checksum.
        if (GCA_UNLIKELY(Hard != nullptr) && !Hard->full()) {
          EdgeVerdict V = Hard->classifyObjectHeader(NewAddr);
          if (GCA_UNLIKELY(V != EdgeVerdict::Ok)) {
            Hard->reportEdgeDefect(V, NewAddr, capturePath(NewAddr));
            severSlot(Slot);
            return;
          }
        }
        Hooks->onUnsharedShared(NewAddr, capturePath(NewAddr));
      }
    }
  }

  /// Scans every reference field of \p Obj through processSlot.
  void scanObjectFields(ObjRef Obj) {
    const TypeInfo &Type = Types.get(Obj->typeId());
    switch (Type.kind()) {
    case TypeKind::Class:
      for (uint32_t Offset : Type.refOffsets())
        processSlot(Obj->refSlot(Offset));
      break;
    case TypeKind::RefArray:
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        processSlot(Obj->elementSlot(I));
      break;
    case TypeKind::DataArray:
      break;
    }
  }

  /// Drains the worklist to empty.
  void drain() {
    while (!Worklist.empty()) {
      uintptr_t Entry = Worklist.back();
      if constexpr (RecordPaths) {
        if (Entry & 1) {
          // All children of this object have been traced; it leaves the
          // current path.
          Worklist.pop_back();
          continue;
        }
        // Keep the object on the worklist, tagged, while its children are
        // traced: the tagged entries form the live path (§2.7).
        Worklist.back() = Entry | 1;
      } else {
        Worklist.pop_back();
      }
      scanObjectFields(reinterpret_cast<ObjRef>(Entry));
    }
  }

  /// Budgeted drain for incremental mark slices: scans at most
  /// \p MaxObjects objects off the worklist, then returns how many it
  /// scanned. The worklist (including any tagged path prefix under
  /// RecordPaths) carries over to the next call unchanged, so a trace split
  /// across slices scans exactly the objects one uninterrupted drain()
  /// would have.
  size_t drainUpTo(size_t MaxObjects) {
    size_t Scanned = 0;
    while (Scanned < MaxObjects && !Worklist.empty()) {
      uintptr_t Entry = Worklist.back();
      if constexpr (RecordPaths) {
        if (Entry & 1) {
          Worklist.pop_back();
          continue;
        }
        Worklist.back() = Entry | 1;
      } else {
        Worklist.pop_back();
      }
      scanObjectFields(reinterpret_cast<ObjRef>(Entry));
      ++Scanned;
    }
    return Scanned;
  }

  /// True while objects (or, under RecordPaths, finished path entries)
  /// remain on the worklist.
  bool hasWork() const { return !Worklist.empty(); }

  /// Like scanObjectFields + drain, but for an unvisited scan origin (an
  /// owner in the ownership phase): with path recording the origin is pushed
  /// tagged so reports include it, without ever marking it.
  void scanChildrenAndDrain(ObjRef Origin) {
    if constexpr (RecordPaths) {
      Worklist.push_back(reinterpret_cast<uintptr_t>(Origin) | 1);
      scanObjectFields(Origin);
      drain();
      // drain() pops the tagged origin itself once its subtree completes,
      // so nothing is left to clean up.
    } else {
      scanObjectFields(Origin);
      drain();
    }
  }

  /// Materializes the current path: the tagged worklist entries from the
  /// scan origin to the parent of \p Leaf, plus \p Leaf. Without path
  /// recording, just {Leaf}.
  std::vector<ObjRef> capturePath(ObjRef Leaf) const {
    std::vector<ObjRef> Path;
    if constexpr (RecordPaths) {
      for (uintptr_t Entry : Worklist)
        if (Entry & 1)
          Path.push_back(reinterpret_cast<ObjRef>(Entry & ~uintptr_t(1)));
    }
    Path.push_back(Leaf);
    return Path;
  }

  /// Number of objects visited (marked or copied) so far this cycle.
  uint64_t objectsVisited() const { return Visited; }

private:
  void push(ObjRef Obj) { Worklist.push_back(reinterpret_cast<uintptr_t>(Obj)); }

  /// Nulls \p Slot (a defective or force-severed reference) unless an
  /// active snapshot says the mutators already replaced its value — the
  /// snapshot-time referent is gone from the slot, and the newer value must
  /// not be clobbered. A stop-the-world collection at the snapshot point
  /// would have severed the slot and the mutator would have overwritten it
  /// afterwards, so skipping the write converges to the same heap state.
  void severSlot(ObjRef *Slot) {
    if (GCA_LIKELY(Snapshot == nullptr) ||
        !Snapshot->overwrittenSinceSnapshot(Slot))
      *Slot = nullptr;
  }

  /// The slow(er) path for first encounters when checks are enabled.
  /// Returns false if the reference was severed and the object must not be
  /// visited.
  bool checkFirstEncounter(ObjRef Obj, ObjRef *Slot) {
    ObjectHeader &Hdr = Obj->header();
    uint32_t Flags = Hdr.Flags;

    if (GCA_UNLIKELY(Flags & HF_Dead)) {
      if (Hooks->severDeadReferences()) {
        severSlot(Slot);
        return false;
      }
      Hooks->onDeadReachable(Obj, capturePath(Obj), Phase);
    }

    TypeInfo &Type = Types.get(Obj->typeId());
    if (GCA_UNLIKELY(Type.isInstanceTracked()))
      Type.incrementLiveCount();
    if (GCA_UNLIKELY(Type.isVolumeTracked()))
      Type.addLiveBytes(Types.allocationSize(
          Obj->typeId(), Type.isArray() ? Obj->arrayLength() : 0));

    if (Phase == TracePhase::Ownership) {
      if (GCA_UNLIKELY(Flags & (HF_Owner | HF_Ownee))) {
        switch (Hooks->classifyPreRoot(Obj)) {
        case PreRootAction::Continue:
          break;
        case PreRootAction::Truncate: {
          // Visit (mark/copy) without scanning children.
          ObjRef NewAddr = Space.visitNew(Obj);
          if (NewAddr != Obj)
            *Slot = NewAddr;
          ++Visited;
          return false;
        }
        case PreRootAction::Skip:
          return false;
        }
      }
    } else if (GCA_UNLIKELY((Flags & HF_Ownee) && !(Flags & HF_Owned))) {
      Hooks->onUnownedOwnee(Obj, capturePath(Obj));
    }
    return true;
  }

  SpaceOpsT Space;
  TypeRegistry &Types;
  TraceHooks *Hooks;
  HeapHardening *Hard;
  /// Active incremental cycle's slot log, or null for atomic traces.
  const SatbSnapshot *Snapshot = nullptr;
  std::vector<uintptr_t> Worklist;
  TracePhase Phase = TracePhase::Roots;
  uint64_t Visited = 0;
};

} // namespace gcassert

#endif // GCASSERT_GC_TRACECORE_H
