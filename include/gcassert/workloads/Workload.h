//===- gcassert/workloads/Workload.h - Benchmark workloads ------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload framework for the benchmark suite.
///
/// The paper evaluates on DaCapo 2006, SPECjvm98 and pseudojbb. Those are
/// Java programs we cannot run; each workload here is a C++ program against
/// the managed heap that reproduces the relevant allocation and connectivity
/// profile (see DESIGN.md §5, substitution 2). Workloads run identically
/// under three configurations — Base, Infrastructure, WithAssertions — so
/// the harness can reproduce Figures 2-5: a workload only calls the
/// assertion interface through WorkloadContext, which drops the calls unless
/// the WithAssertions configuration is active.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_WORKLOADS_WORKLOAD_H
#define GCASSERT_WORKLOADS_WORKLOAD_H

#include "gcassert/core/AssertionEngine.h"
#include "gcassert/runtime/Vm.h"
#include "gcassert/support/Random.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gcassert {

/// Everything a workload sees at run time. The assertion helpers are no-ops
/// unless assertions are enabled, so a single workload source serves all
/// three benchmark configurations.
class WorkloadContext {
public:
  WorkloadContext(Vm &TheVm, AssertionEngine *Engine, bool UseAssertions,
                  uint64_t Seed)
      : TheVm(TheVm), Engine(Engine), UseAssertions(UseAssertions),
        Rng(Seed) {}

  Vm &vm() { return TheVm; }
  TypeRegistry &types() { return TheVm.types(); }
  MutatorThread &mainThread() { return TheVm.mainThread(); }
  SplitMix64 &rng() { return Rng; }

  /// The engine, or null under the Base configuration. Most workloads never
  /// need it directly — use the helpers below.
  AssertionEngine *engine() { return Engine; }

  /// True only under the WithAssertions configuration.
  bool assertionsEnabled() const { return UseAssertions && Engine; }

  /// \name Assertion helpers (no-ops unless assertions are enabled)
  /// @{
  void assertDead(ObjRef Obj) {
    if (assertionsEnabled())
      Engine->assertDead(Obj);
  }
  void assertUnshared(ObjRef Obj) {
    if (assertionsEnabled())
      Engine->assertUnshared(Obj);
  }
  void assertInstances(TypeId Type, uint32_t Limit) {
    if (assertionsEnabled())
      Engine->assertInstances(Type, Limit);
  }
  void assertOwnedBy(ObjRef Owner, ObjRef Ownee) {
    if (assertionsEnabled())
      Engine->assertOwnedBy(Owner, Ownee);
  }
  void startRegion(MutatorThread &Thread) {
    if (assertionsEnabled())
      Engine->startRegion(Thread);
  }
  void assertAllDead(MutatorThread &Thread) {
    if (assertionsEnabled())
      Engine->assertAllDead(Thread);
  }
  /// @}

private:
  Vm &TheVm;
  AssertionEngine *Engine;
  bool UseAssertions;
  SplitMix64 Rng;
};

/// One benchmark program. Lifecycle: construct -> setUp -> runIteration* ->
/// tearDown -> destruct, all against the same VM.
class Workload {
public:
  virtual ~Workload();

  /// Short name ("db", "pseudojbb", "bloat", ...).
  virtual const char *name() const = 0;

  /// Heap size this workload runs with. Calibrated to roughly twice the
  /// workload's minimum live size, mirroring the paper's "heap size fixed
  /// at two times the minimum possible".
  virtual size_t heapBytes() const = 0;

  /// Registers types and builds long-lived structures.
  virtual void setUp(WorkloadContext &Ctx) = 0;

  /// Runs one benchmark iteration.
  virtual void runIteration(WorkloadContext &Ctx) = 0;

  /// Releases long-lived structures (optional).
  virtual void tearDown(WorkloadContext &Ctx) { (void)Ctx; }
};

/// Global name -> factory table for the benchmark suite.
class WorkloadRegistry {
public:
  using Factory = std::function<std::unique_ptr<Workload>()>;

  /// Registers \p MakeWorkload under \p Name. Names must be unique.
  static void add(const std::string &Name, Factory MakeWorkload);

  /// Instantiates the named workload; aborts if unknown.
  static std::unique_ptr<Workload> create(const std::string &Name);

  /// All registered names, sorted.
  static std::vector<std::string> names();
};

/// Registers every built-in workload (idempotent). Call before using the
/// registry; bench/example binaries do this once at startup.
void registerBuiltinWorkloads();

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_WORKLOAD_H
