//===- gcassert/workloads/Harness.h - Benchmark harness ---------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a workload under one of the paper's three configurations and
/// reports timing split into total / GC / mutator time, the way Figures 2-5
/// present results. Trials and confidence intervals are layered on top by
/// the bench binaries using support/Stats.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_WORKLOADS_HARNESS_H
#define GCASSERT_WORKLOADS_HARNESS_H

#include "gcassert/workloads/Workload.h"

#include <string>

namespace gcassert {

class RecordingViolationSink;

/// The paper's three measurement configurations (§3.1.1).
enum class BenchConfig : uint8_t {
  /// Unmodified runtime: the collector runs the no-checks trace loop.
  Base,
  /// Assertion engine installed (checking trace loop, path recording), but
  /// the program registers no assertions.
  Infrastructure,
  /// Engine installed and the workload's assertions active.
  WithAssertions,
};

const char *benchConfigName(BenchConfig Config);

/// Knobs for one measured run.
struct HarnessOptions {
  /// Iterations run before timing starts (the paper warms up and times a
  /// later iteration).
  int WarmupIterations = 1;
  /// Iterations included in the timed window.
  int MeasuredIterations = 2;
  uint64_t Seed = 0x5eed;
  CollectorKind Collector = CollectorKind::MarkSweep;
  /// §2.7 path recording (on in the paper's Infrastructure configuration;
  /// the ABL-PATH ablation turns it off).
  bool RecordPaths = true;
  /// Overrides the workload's heap size when nonzero.
  size_t HeapBytesOverride = 0;
  /// GC worker threads (GcConfig::Threads): >1 enables parallel marking and
  /// sweeping for the mark-sweep family.
  unsigned GcThreads = 1;
  /// Total mutator threads. The workload always runs on the main thread;
  /// each additional thread is a real OS churn mutator allocating
  /// continuously (bounded live set) through the whole warmup + measured
  /// window, so the timings include safepoint and allocation contention.
  unsigned MutatorThreads = 1;
  /// Hardened heap mode (GcConfig::Hardening): Check stamps header
  /// checksums and validates every traced edge; Full adds pointer
  /// plausibility and post-cycle structural audits.
  HardeningMode Hardening = HardeningMode::Off;
  /// Runs HeapVerifier::verify() after every collection and aborts on any
  /// defect — the belt-and-suspenders mode behind the harness's
  /// --verify-heap flag.
  bool VerifyHeapAfterGc = false;
  /// Incremental SATB marking (GcConfig::Incremental, DESIGN.md §15):
  /// mark-sweep cycles run as a snapshot pause, budgeted mark slices
  /// interleaved with the workload, and a short terminal pause. The
  /// harness arms the occupancy pacing trigger so cycles actually begin
  /// between allocation failures. Ignored by the other collector families.
  bool Incremental = false;
  /// Objects scanned per incremental mark slice (GcConfig::MarkBudget).
  /// Smaller budgets mean shorter pauses and more slices; 0 is unbounded.
  uint64_t MarkBudget = 512;
  /// When set, violations are recorded here instead of printed.
  RecordingViolationSink *Sink = nullptr;
};

/// Timing and counters from one measured run.
struct RunResult {
  double TotalMillis = 0;
  double GcMillis = 0;
  double MutatorMillis = 0;
  /// Phase split of GcMillis over the measured window (mark-sweep family
  /// only; zero for the copying collectors).
  double MarkMillis = 0;
  double SweepMillis = 0;
  uint64_t GcCycles = 0;
  /// Engine counters at the end of the run (zeros under Base).
  EngineCounters Counters;
};

/// Builds a VM, runs \p WorkloadName under \p Config, and returns the timing
/// of the measured window.
RunResult runWorkload(const std::string &WorkloadName, BenchConfig Config,
                      const HarnessOptions &Options = HarnessOptions());

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_HARNESS_H
