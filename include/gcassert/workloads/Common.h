//===- gcassert/workloads/Common.h - Shared workload helpers ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the benchmark workloads: the common object/byte
/// array types (registered once per registry under their Java-style names)
/// and RootedArray, a host-side handle to a managed array kept alive through
/// a VM global root — the idiom workloads use for long-lived structures.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_WORKLOADS_COMMON_H
#define GCASSERT_WORKLOADS_COMMON_H

#include "gcassert/runtime/Vm.h"

namespace gcassert {

/// Returns the "[Ljava/lang/Object;" reference-array type, registering it on
/// first use.
inline TypeId ensureObjectArrayType(TypeRegistry &Types) {
  if (const TypeInfo *Info = Types.lookup("[Ljava/lang/Object;"))
    return Info->id();
  return Types.registerRefArray("[Ljava/lang/Object;");
}

/// Returns the "[B" byte-array type, registering it on first use.
inline TypeId ensureByteArrayType(TypeRegistry &Types) {
  if (const TypeInfo *Info = Types.lookup("[B"))
    return Info->id();
  return Types.registerDataArray("[B", 1);
}

/// Returns the "[J" long-array type, registering it on first use.
inline TypeId ensureLongArrayType(TypeRegistry &Types) {
  if (const TypeInfo *Info = Types.lookup("[J"))
    return Info->id();
  return Types.registerDataArray("[J", 8);
}

/// A managed object array pinned by a VM global root. Survives collections
/// (the root slot is updated under a moving collector); elements are read
/// back through the root on every access, so the handle is always current.
class RootedArray {
public:
  RootedArray(Vm &TheVm, MutatorThread &Thread, uint64_t Length)
      : TheVm(TheVm) {
    Root = TheVm.addGlobalRoot(
        TheVm.allocate(Thread, ensureObjectArrayType(TheVm.types()), Length));
  }

  ~RootedArray() { TheVm.removeGlobalRoot(Root); }

  RootedArray(const RootedArray &) = delete;
  RootedArray &operator=(const RootedArray &) = delete;

  ObjRef array() const { return TheVm.globalRoot(Root); }
  uint64_t length() const { return array()->arrayLength(); }
  ObjRef get(uint64_t Index) const { return array()->getElement(Index); }
  void set(uint64_t Index, ObjRef Value) {
    array()->setElement(Index, Value);
  }
  void clear() {
    ObjRef Arr = array();
    for (uint64_t I = 0, E = Arr->arrayLength(); I != E; ++I)
      Arr->setElement(I, nullptr);
  }

private:
  Vm &TheVm;
  GlobalRootId Root;
};

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_COMMON_H
