//===- gcassert/workloads/BTree.h - Managed-heap B+ tree --------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A B+ tree stored entirely in the managed heap — the analog of SPEC
/// JBB2000's longBTree, which appears in the paper's Figure 1 path
/// (longBTree -> longBTreeNode -> [Ljava/lang/Object; -> ...). Nodes are
/// managed objects whose key and entry arrays are separate managed arrays,
/// so error-report paths through the tree look exactly like the paper's.
///
/// The host-side ManagedBTree class is only a manipulation handle: all data
/// lives in the heap, rooted through a VM global root (and through whatever
/// managed structure the workload links the tree object into). Operations
/// are GC-safe under both collectors: every reference held across an
/// allocation lives in a handle or global root.
///
/// Deletion is lazy (no rebalancing): entries are removed from leaves and
/// separator keys may go stale, which preserves search correctness and is
/// all the workloads need.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_WORKLOADS_BTREE_H
#define GCASSERT_WORKLOADS_BTREE_H

#include "gcassert/runtime/Vm.h"

#include <cstdint>
#include <functional>

namespace gcassert {

/// Host-side handle to a managed B+ tree keyed by int64.
class ManagedBTree {
public:
  /// Managed type ids and field offsets of the tree representation; shared
  /// per registry.
  struct Layout {
    TypeId Tree;
    TypeId Node;
    TypeId KeyArray;
    TypeId EntryArray;
    uint32_t TreeRootField;
    uint32_t TreeSizeField;
    uint32_t NodeCountField;
    uint32_t NodeLeafField;
    uint32_t NodeKeysField;
    uint32_t NodeEntriesField;
  };

  /// Max keys per node (fan-out 16).
  static constexpr uint32_t MaxKeys = 15;

  /// Registers the tree's managed types in \p Types, or reconstructs the
  /// layout from an existing registration (keyed by type name, so multiple
  /// trees and multiple VM instances coexist safely).
  static Layout ensureTypes(TypeRegistry &Types);

  /// Allocates an empty tree in \p TheVm's heap, rooted via a VM global
  /// root for the lifetime of this handle.
  ManagedBTree(Vm &TheVm, MutatorThread &Thread);
  ~ManagedBTree();

  ManagedBTree(const ManagedBTree &) = delete;
  ManagedBTree &operator=(const ManagedBTree &) = delete;

  /// The managed tree object (e.g. to pass as an assert-ownedby owner or to
  /// store into another managed object).
  ObjRef treeObject() const { return TheVm.globalRoot(Root); }

  /// Inserts \p Key -> the object in \p Value (a handle, so the value
  /// survives the allocations insertion may perform). Duplicate keys
  /// overwrite.
  void insert(int64_t Key, Local Value);

  /// Same, but pushes the handles insertion needs onto \p T instead of the
  /// thread bound at construction — the form the serving threads use, where
  /// a tree built on the main thread is operated on by whichever OS mutator
  /// holds its shard lock. \p Value must be a handle on \p T.
  void insert(MutatorThread &T, int64_t Key, Local Value);

  /// Returns the value for \p Key, or null.
  ObjRef find(int64_t Key) const;

  /// Calls \p Fn(Key, Value) for up to \p Limit pairs with Key >= \p
  /// StartKey, in ascending key order; returns how many were visited.
  /// Never allocates, so raw references stay stable for the duration.
  uint64_t scanFrom(int64_t StartKey, uint64_t Limit,
                    const std::function<void(int64_t, ObjRef)> &Fn) const;

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key);

  /// Returns the value with the smallest key (null if empty); the key is
  /// stored through \p KeyOut when non-null.
  ObjRef minValue(int64_t *KeyOut = nullptr) const;

  /// Number of key/value pairs.
  uint64_t size() const;

  /// Calls \p Fn(Key, Value) for every pair in ascending key order.
  void forEach(const std::function<void(int64_t, ObjRef)> &Fn) const;

private:
  ObjRef rootNode() const;
  ObjRef allocNode(MutatorThread &T, bool IsLeaf, HandleScope &Scope,
                   Local &Out);
  void splitChild(MutatorThread &T, Local Parent, uint32_t Index,
                  HandleScope &Scope);

  Vm &TheVm;
  MutatorThread &Thread;
  Layout L;
  GlobalRootId Root;
};

} // namespace gcassert

#endif // GCASSERT_WORKLOADS_BTREE_H
