//===- gcassert/fuzz/TraceGenerator.h - Random trace generator --*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random-program generator. One seed, one program, forever:
/// the generator draws every decision from a support/Random SplitMix64
/// stream, so a "seed:<n>" replay spec reproduces the trace bit-for-bit on
/// any host (tests/support/RandomTest.cpp pins the stream).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_FUZZ_TRACEGENERATOR_H
#define GCASSERT_FUZZ_TRACEGENERATOR_H

#include "gcassert/fuzz/TraceProgram.h"

namespace gcassert {
namespace fuzz {

struct GeneratorOptions {
  /// Approximate number of ops per trace (the trailing collects are
  /// appended on top).
  size_t TargetOps = 96;
};

/// Generates the deterministic program for \p Seed. Every program ends with
/// two Collect ops (the second resolves the orphaned-ownee watch), and the
/// generator keeps allocation between consecutive collects far below the
/// smallest nursery so no implicit collection can ever fire.
TraceProgram generateTrace(uint64_t Seed, const GeneratorOptions &Options = {});

} // namespace fuzz
} // namespace gcassert

#endif // GCASSERT_FUZZ_TRACEGENERATOR_H
