//===- gcassert/fuzz/TraceInterpreter.h - Trace execution -------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a TraceProgram against a real Vm + AssertionEngine under one
/// collector configuration and extracts the collector-independent result:
/// the violation multiset, the post-collection live snapshots, and the
/// GcStats invariants every clean run must satisfy.
///
/// The interpreter never caches an ObjRef across ops: moving collectors
/// invalidate raw references, so objects are only reached through the Vm's
/// global root slots, which every collector updates.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_FUZZ_TRACEINTERPRETER_H
#define GCASSERT_FUZZ_TRACEINTERPRETER_H

#include "gcassert/fuzz/ShadowHeap.h"
#include "gcassert/fuzz/TraceProgram.h"
#include "gcassert/runtime/Vm.h"

namespace gcassert {
namespace fuzz {

/// One cell of the differential matrix.
struct RunConfig {
  CollectorKind Collector = CollectorKind::MarkSweep;
  unsigned Threads = 1;
  HardeningMode Hardening = HardeningMode::Off;
  /// Total mutator threads. The trace ops always run on the main thread;
  /// each additional thread is a churn mutator allocating a budgeted
  /// amount of oracle-invisible objects concurrently, so every safepoint,
  /// TLAB and root-scan path is exercised without perturbing the
  /// collector-independent result the oracle predicts.
  unsigned MutatorThreads = 1;
  /// Drive the mark-sweep family incrementally (SATB snapshot cycles,
  /// DESIGN.md §15): each Collect op finishes the in-flight cycle — whose
  /// snapshot was pinned at the *previous* Collect op — and opens the next
  /// one, with allocation-paced mark slices advancing it between ops.
  /// Because every cycle is checked against the heap exactly as it stood
  /// at a Collect op, the violation multiset must still match the oracle
  /// bit-for-bit; only the per-Collect live snapshots are skipped (black
  /// allocation retains floating garbage until the next cycle), replaced
  /// by the end-of-run Final snapshot every config must agree on.
  /// Ignored for the other collector families.
  bool Incremental = false;
};

std::string describeRunConfig(const RunConfig &Config);

/// What one execution produced.
struct RunResult {
  /// False when the run broke a structural precondition (allocation
  /// returned null, an implicit collection fired, ...). Generated traces
  /// never produce invalid runs; arbitrary replay specs might.
  bool Valid = true;
  std::string InvalidReason;

  /// Sorted multiset excluding OwnershipOverlap (order-dependent, see
  /// ShadowHeap.h).
  ViolationMultiset Violations;
  /// OwnershipOverlap warnings seen (counted, not compared).
  uint64_t OverlapWarnings = 0;
  /// One snapshot per Collect op. Empty for incremental runs (floating
  /// garbage makes mid-run live sets collector-dependent); Final is the
  /// cross-config anchor instead.
  std::vector<LiveSnapshot> Snapshots;
  /// The end-of-run live set, taken after a final checks-detached
  /// stop-the-world collection: exactly the objects reachable from the
  /// roots when the program ended, identical for every config.
  LiveSnapshot Final;

  GcStats Stats;
  uint64_t EngineGcCycles = 0;
  uint64_t CollectOps = 0;
};

/// Runs \p Program on a fresh Vm configured per \p Config. Threads > 1
/// disables §2.7 path recording so the parallel tracer actually engages
/// (with recording on, the mark-sweep family forces the sequential loop).
RunResult runTrace(const TraceProgram &Program, const RunConfig &Config);

} // namespace fuzz
} // namespace gcassert

#endif // GCASSERT_FUZZ_TRACEINTERPRETER_H
