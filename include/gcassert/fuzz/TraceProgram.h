//===- gcassert/fuzz/TraceProgram.h - Heap-mutation traces ------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzer's program representation: a heap-mutation trace
/// is a flat list of small ops over a fixed bank of global root slots and a
/// fixed universe of five managed types. Traces are closed under
/// subsequence: every op is defined as a no-op when its preconditions do
/// not hold (empty slot, wrong type, no open region), so the delta-debugging
/// reducer can drop arbitrary ops and the remainder is still a valid
/// program. Two invariants the op semantics enforce (rather than trusting
/// the generator) keep the oracle collector-independent:
///
///  * no heap edge ever points at an Owner-type object (owners are reachable
///    only from root slots), so the ownership phase's address-ordered owner
///    scan cannot change what is live or which violations fire;
///  * programs allocate far less than a nursery between collections, so no
///    implicit (unchecked) collection ever runs.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_FUZZ_TRACEPROGRAM_H
#define GCASSERT_FUZZ_TRACEPROGRAM_H

#include "gcassert/heap/TypeRegistry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gcassert {
namespace fuzz {

/// Number of global root slots every trace runs over.
inline constexpr unsigned SlotCount = 24;

/// The fixed type universe. Small/Node are ordinary class types, Owner is
/// the only type assert-ownedby owners are drawn from (and the only type
/// Store refuses as a value), RefArray/DataArray exercise the array paths.
enum class FuzzType : uint8_t {
  Small,     ///< class: 2 ref fields + 8-byte serial
  Node,      ///< class: 3 ref fields + 8-byte serial
  Owner,     ///< class: 4 ref fields + 8-byte serial; never a field target
  RefArray,  ///< variable-length reference array
  DataArray, ///< variable-length byte array (untraced)
};
inline constexpr unsigned NumFuzzTypes = 5;

/// Registered type name for \p Type (stable across VMs, used as the
/// violation-comparison key).
const char *fuzzTypeName(FuzzType Type);

/// Reference-field count of a class FuzzType (0 for arrays).
unsigned fuzzRefFieldCount(FuzzType Type);

/// Mirror of TypeRegistry::allocationSize for the shadow heap: header +
/// payload (classes) or header + length word + elements (arrays), with the
/// same 16-byte minimum. Keeping this formula in one visible place is what
/// lets the oracle predict assert-volume byte counts and histogram bytes
/// without asking the real heap.
uint64_t fuzzAllocationSize(FuzzType Type, uint64_t ArrayLength);

/// The per-VM registration of the universe: TypeIds plus the field offsets
/// the interpreter needs.
struct FuzzTypeSet {
  TypeId Ids[NumFuzzTypes] = {};
  /// Ref-field payload offsets per class type (empty for arrays).
  std::vector<uint32_t> RefOffsets[NumFuzzTypes];
  /// Payload offset of the 8-byte serial scalar (class types only).
  uint32_t SerialOffset[NumFuzzTypes] = {};

  /// The FuzzType with TypeId \p Id, or NumFuzzTypes if foreign.
  unsigned indexOf(TypeId Id) const {
    for (unsigned I = 0; I != NumFuzzTypes; ++I)
      if (Ids[I] == Id)
        return I;
    return NumFuzzTypes;
  }
};

/// Registers the five fuzz types in \p Types.
FuzzTypeSet registerFuzzTypes(TypeRegistry &Types);

/// Trace operations. Slot operands are root-slot indices in [0, SlotCount).
enum class OpKind : uint8_t {
  New,             ///< A=dst slot, B=FuzzType, Aux=array length
  Store,           ///< A=dst slot, B=field/element selector, C=src slot
  NullField,       ///< A=dst slot, B=field/element selector
  Load,            ///< A=dst slot, B=src slot, C=field/element selector
  Drop,            ///< A=slot: null the root slot
  Collect,         ///< run an explicit (checking) collection
  AssertDead,      ///< A=slot
  AssertUnshared,  ///< A=slot
  AssertOwnedBy,   ///< A=owner slot, B=owner field selector, C=ownee slot;
                   ///< also stores owner.field = ownee so ownership can hold
  AssertInstances, ///< B=FuzzType, Aux=limit
  AssertVolume,    ///< B=FuzzType, Aux=limit bytes
  RegionBegin,     ///< open an allocation region on the main thread
  RegionEnd,       ///< close it and assert-alldead (no-op when none open)
};

/// One trace operation. Field/element selectors are reduced modulo the
/// target's ref-field count or array length at execution time.
struct TraceOp {
  OpKind Kind;
  uint8_t A = 0;
  uint8_t B = 0;
  uint8_t C = 0;
  uint32_t Aux = 0;

  bool operator==(const TraceOp &O) const {
    return Kind == O.Kind && A == O.A && B == O.B && C == O.C && Aux == O.Aux;
  }
};

/// A full trace plus its provenance. The one-line replay spec is either
/// "seed:<n>[:ops=<n>]" (regenerate through TraceGenerator) or
/// "prog:<op>;<op>;..." (explicit op list, what the reducer prints).
struct TraceProgram {
  std::vector<TraceOp> Ops;
  /// Nonzero when this program came out of the generator.
  uint64_t Seed = 0;
  bool HasSeed = false;
  size_t SeedTargetOps = 0;

  /// Serializes the explicit op-list form ("prog:...").
  std::string serializeOps() const;

  /// The shortest faithful replay spec: the seed form when available,
  /// otherwise the op-list form.
  std::string replaySpec() const;

  size_t collectCount() const;
};

/// Parses either spec form. Returns false (and fills \p Error) on malformed
/// input; a "seed:" spec is expanded through the generator.
bool parseTraceSpec(const std::string &Spec, TraceProgram &Out,
                    std::string *Error = nullptr);

} // namespace fuzz
} // namespace gcassert

#endif // GCASSERT_FUZZ_TRACEPROGRAM_H
