//===- gcassert/fuzz/ShadowHeap.h - Ground-truth heap oracle ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow-heap oracle: a plain-STL mirror of the managed heap that
/// executes the same trace the real interpreter runs and computes, from
/// first principles (graph reachability over integer node ids — no object
/// headers, no tracing, no collector), exactly which assertion violations
/// every checking collection must report and exactly which objects must
/// survive it. Every engine verdict is checked against this independent
/// implementation; DESIGN.md §10 documents the oracle semantics and why
/// they are collector-independent for the programs the fuzzer emits.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_FUZZ_SHADOWHEAP_H
#define GCASSERT_FUZZ_SHADOWHEAP_H

#include "gcassert/core/Violation.h"
#include "gcassert/fuzz/TraceProgram.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gcassert {
namespace fuzz {

/// The comparison key for one violation: which cycle, which assertion, what
/// type of object. Paths and messages are presentation, not semantics, and
/// OwnershipOverlap warnings depend on the address order of the owner scan,
/// so neither participates in differential comparison.
struct ViolationKey {
  uint64_t Cycle;
  AssertionKind Kind;
  std::string TypeName;

  bool operator==(const ViolationKey &O) const {
    return Cycle == O.Cycle && Kind == O.Kind && TypeName == O.TypeName;
  }
  bool operator<(const ViolationKey &O) const {
    if (Cycle != O.Cycle)
      return Cycle < O.Cycle;
    if (Kind != O.Kind)
      return Kind < O.Kind;
    return TypeName < O.TypeName;
  }
};

/// Sorted multiset of violation keys.
using ViolationMultiset = std::vector<ViolationKey>;

std::string describeViolations(const ViolationMultiset &Violations);

/// The live set right after one collection, in collector-independent form:
/// every class object carries its allocation serial (stamped into the
/// payload by the interpreter, mirrored by node id in the shadow), and every
/// type its instance count and byte volume (TypeRegistry::allocationSize
/// units, so moving and non-moving heaps agree).
struct LiveSnapshot {
  /// Sorted (FuzzType index, serial) pairs, class types only.
  std::vector<std::pair<uint8_t, uint64_t>> ClassSerials;
  /// Sorted (FuzzType index, instances, bytes), zero rows dropped.
  std::vector<std::array<uint64_t, 3>> PerType;

  bool operator==(const LiveSnapshot &O) const {
    return ClassSerials == O.ClassSerials && PerType == O.PerType;
  }
};

std::string describeSnapshot(const LiveSnapshot &Snapshot);

/// What the oracle predicts for a whole trace.
struct ShadowResult {
  /// Sorted multiset over all cycles (OwnershipOverlap never included; the
  /// OwneeOutlivedOwner entries are in ExtendedViolations only).
  ViolationMultiset CoreViolations;
  /// CoreViolations plus the OwneeOutlivedOwner watch verdicts — the full
  /// expectation for an engine running at DegradationLevel::Full.
  ViolationMultiset Violations;
  /// One snapshot per Collect op, in order.
  std::vector<LiveSnapshot> Snapshots;
  /// The end-of-run live set: plain root closure over the final graph, the
  /// prediction for every run's checks-detached cleanup collection (no
  /// ownership phase — a dead owner's region does not keep objects alive
  /// here).
  LiveSnapshot Final;
  /// Total objects the trace allocated.
  uint64_t ObjectsAllocated = 0;
};

/// Runs \p Program against the shadow heap.
ShadowResult runShadowOracle(const TraceProgram &Program);

} // namespace fuzz
} // namespace gcassert

#endif // GCASSERT_FUZZ_SHADOWHEAP_H
