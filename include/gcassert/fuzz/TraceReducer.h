//===- gcassert/fuzz/TraceReducer.h - Delta-debugging reducer ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ddmin-style trace minimizer. Because every TraceOp is a guarded no-op
/// when its preconditions fail (see TraceProgram.h), any subsequence of a
/// trace is itself a valid trace, which makes chunk removal trivially sound:
/// the reducer repeatedly deletes op ranges while the caller's predicate
/// (usually "the differential run still diverges") keeps holding, down to a
/// 1-minimal trace whose replay spec is printed for the bug report.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_FUZZ_TRACEREDUCER_H
#define GCASSERT_FUZZ_TRACEREDUCER_H

#include "gcassert/fuzz/TraceProgram.h"

#include <functional>

namespace gcassert {
namespace fuzz {

struct ReducerStats {
  /// Predicate evaluations spent.
  size_t Probes = 0;
  /// Ops in / ops out.
  size_t InitialOps = 0;
  size_t FinalOps = 0;
};

/// Shrinks \p Program to a 1-minimal trace for which \p StillFails returns
/// true. \p StillFails must return true for \p Program itself (the reducer
/// asserts this with its first probe). \p MaxProbes bounds the work; the
/// best program found so far is returned when the budget runs out.
TraceProgram
reduceTrace(const TraceProgram &Program,
            const std::function<bool(const TraceProgram &)> &StillFails,
            ReducerStats *Stats = nullptr, size_t MaxProbes = 4000);

} // namespace fuzz
} // namespace gcassert

#endif // GCASSERT_FUZZ_TRACEREDUCER_H
