//===- gcassert/fuzz/DifferentialRunner.h - Cross-config check --*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential runner: executes one trace across the collector matrix
/// (4 collector families x {1,2,4} GC threads x hardening {Off, Check} x
/// {1,4} concurrent mutator threads),
/// checks every run against the shadow-heap oracle, and cross-checks the
/// runs against each other — violation multisets, live-object multisets,
/// and GcStats invariants must all agree. Any divergence is reported with
/// enough detail to reproduce and can be handed to the TraceReducer.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_FUZZ_DIFFERENTIALRUNNER_H
#define GCASSERT_FUZZ_DIFFERENTIALRUNNER_H

#include "gcassert/fuzz/TraceInterpreter.h"

namespace gcassert {
namespace fuzz {

/// Matrix selection.
enum class MatrixKind : uint8_t {
  /// 4 collectors x {1,2,4} GC threads x hardening {Off, Check} x {1,4}
  /// mutator threads = 48 configs.
  Full,
  /// 4 collectors x 1 thread x hardening Off = 4 configs (fast paths only).
  Quick,
  /// 4 collectors x 1 thread x hardening Check — the only matrix safe to
  /// run with a corrupt.* failpoint armed (Off-mode tracing would chase the
  /// scribbled reference into unscreened garbage). Stays single-mutator:
  /// EveryNth failpoints count allocations, and churn-thread allocations
  /// would make the trip site nondeterministic.
  HardenedOnly,
  /// Stop-the-world mark-sweep next to its incremental (SATB snapshot)
  /// drive: {stw, incremental} x {1,2,4} GC threads x hardening {Off,
  /// Check} x {1,4} mutator threads = 24 configs. The nightly incremental
  /// campaign leg runs this.
  Incremental,
};

std::vector<RunConfig> buildMatrix(MatrixKind Kind);

/// Outcome of one differential run.
struct DiffReport {
  bool Diverged = false;
  /// Human-readable description of the first divergence found.
  std::string Description;
  /// Config that diverged (description string), empty for oracle-side
  /// context.
  std::string Config;

  /// When true, runs are additionally required to report zero hardening
  /// defects/quarantines; a seeded corrupt.* failpoint trips this.
  bool ExpectDefectFree = true;
};

/// Runs \p Program across \p Matrix and against the oracle. With
/// \p ExpectDefectFree (the default) any nonzero HeapDefects/Quarantined
/// count is itself a divergence — this is how a seeded corrupt.* failpoint
/// surfaces even when the severed edge does not change the live set.
DiffReport runDifferential(const TraceProgram &Program,
                           const std::vector<RunConfig> &Matrix,
                           bool ExpectDefectFree = true);

} // namespace fuzz
} // namespace gcassert

#endif // GCASSERT_FUZZ_DIFFERENTIALRUNNER_H
