//===- gcassert/core/PathFinder.h - Post-hoc path queries -------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-demand heap path reconstruction.
///
/// The paper notes (§2.7) that assert-instances and assert-unshared cannot
/// print a useful path because the offending paths "may have been traced
/// earlier": the collector only knows about the problem after the fact.
/// PathFinder closes that gap as an extension: it runs a breadth-first
/// search over the current heap graph from the VM's roots and reconstructs
/// the shortest path to any target object. It is a mutator-time facility —
/// run it between collections, never from inside a hook.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_CORE_PATHFINDER_H
#define GCASSERT_CORE_PATHFINDER_H

#include "gcassert/core/Violation.h"
#include "gcassert/runtime/Vm.h"

#include <optional>
#include <vector>

namespace gcassert {

/// BFS-based heap path queries over a Vm's object graph.
class PathFinder {
public:
  explicit PathFinder(Vm &TheVm) : TheVm(TheVm) {}

  /// Finds a shortest root-to-\p Target path. Returns std::nullopt if
  /// \p Target is unreachable from the roots.
  std::optional<std::vector<PathStep>> findPath(ObjRef Target);

  /// Collects up to \p MaxInstances live (root-reachable) instances of
  /// \p Type, in BFS discovery order. Useful for diagnosing
  /// assert-instances violations.
  std::vector<ObjRef> findReachableInstances(TypeId Type,
                                             size_t MaxInstances);

  /// Counts incoming references to \p Target from root-reachable objects
  /// (roots themselves count as one each). Useful for diagnosing
  /// assert-unshared violations.
  size_t countIncomingReferences(ObjRef Target);

private:
  Vm &TheVm;
};

} // namespace gcassert

#endif // GCASSERT_CORE_PATHFINDER_H
