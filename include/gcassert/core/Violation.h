//===- gcassert/core/Violation.h - Assertion violations ---------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Violation records, reaction policies (§2.6) and the reporting sinks
/// (§2.7). The default console sink prints the Figure-1 format: a warning
/// line, the offending object's type, and the complete path through the heap
/// from the scan origin to the object.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_CORE_VIOLATION_H
#define GCASSERT_CORE_VIOLATION_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcassert {

class OStream;

/// Which assertion was violated.
enum class AssertionKind : uint8_t {
  /// assert-dead / assert-alldead: a DEAD-flagged object is reachable.
  Dead,
  /// assert-unshared: more than one incoming reference.
  Unshared,
  /// assert-instances: live-instance count exceeds the limit.
  Instances,
  /// assert-volume: live bytes of a type exceed the limit (§2.4's "total
  /// volume" form).
  Volume,
  /// assert-ownedby: ownee not reachable from its owner.
  OwnedBy,
  /// assert-ownedby misuse: owner regions overlap (§2.5.2's "improper use
  /// of the assertion" warning).
  OwnershipOverlap,
  /// Extension: an ownee is still reachable although its owner died.
  OwneeOutlivedOwner,
};

/// Number of AssertionKind values, for reaction tables.
inline constexpr size_t NumAssertionKinds = 7;

/// Returns a short human-readable name ("assert-dead", ...).
const char *assertionKindName(AssertionKind Kind);

/// How the system reacts when an assertion fires (§2.6).
enum class ReactionPolicy : uint8_t {
  /// Report and keep executing — the paper's default, preserving the
  /// semantics of the assertion-free program.
  LogAndContinue,
  /// Report and abort the process; for non-recoverable errors.
  LogAndHalt,
  /// Force the assertion to be true. For assert-dead the collector severs
  /// (nulls) every reference to the object so it is reclaimed this cycle.
  /// Listed as future work in the paper; implemented here.
  ForceTrue,
};

/// One edge of a heap path: the type of the object, and the name of the
/// field in the *previous* path object that points to it (empty for the
/// first step or when unresolvable).
struct PathStep {
  std::string TypeName;
  std::string FieldName;
};

/// A single assertion failure.
struct Violation {
  AssertionKind Kind;
  /// Collection cycle in which the violation was detected.
  uint64_t Cycle = 0;
  /// Type name of the offending object (empty for type-level violations
  /// where Message carries everything).
  std::string ObjectType;
  /// One-line description.
  std::string Message;
  /// Path from the scan origin to the offending object, inclusive. Empty if
  /// no path is available (e.g. assert-instances).
  std::vector<PathStep> Path;
  /// True when the path starts at an owner object (ownership phase) rather
  /// than at a root.
  bool PathFromOwner = false;
};

/// Receives violations as the collector detects them.
class ViolationSink {
public:
  virtual ~ViolationSink();

  virtual void report(const Violation &V) = 0;
};

/// Prints violations in the paper's Figure 1 format.
class ConsoleViolationSink : public ViolationSink {
public:
  /// Writes to \p Out; defaults to the process stderr stream.
  explicit ConsoleViolationSink(OStream *Out = nullptr) : Out(Out) {}

  void report(const Violation &V) override;

private:
  OStream *Out;
};

/// Collects violations in memory; used by tests and the benches.
class RecordingViolationSink : public ViolationSink {
public:
  void report(const Violation &V) override { Violations.push_back(V); }

  const std::vector<Violation> &violations() const { return Violations; }

  /// Number of recorded violations of \p Kind.
  size_t countOf(AssertionKind Kind) const;

  void clear() { Violations.clear(); }

private:
  std::vector<Violation> Violations;
};

/// Renders \p V in the Figure-1 textual format into \p Out.
void printViolation(OStream &Out, const Violation &V);

} // namespace gcassert

#endif // GCASSERT_CORE_VIOLATION_H
