//===- gcassert/core/ViolationLogSink.h - Structured logging ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sinks for deployed use (the paper's target setting: overhead "low
/// enough for use in a deployed setting" implies violations land in logs,
/// not on a developer's terminal):
///
///   * LineLogSink — one machine-parsable line per violation:
///       gc-assert|<cycle>|<kind>|<object type>|<message>|<path with ->`s>
///   * TeeViolationSink — fans a violation out to several sinks (e.g.
///       record in memory *and* log).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_CORE_VIOLATIONLOGSINK_H
#define GCASSERT_CORE_VIOLATIONLOGSINK_H

#include "gcassert/core/Violation.h"

#include <vector>

namespace gcassert {

class OStream;

/// One line per violation, machine-parsable, '|'-separated.
class LineLogSink : public ViolationSink {
public:
  explicit LineLogSink(OStream &Out) : Out(Out) {}

  void report(const Violation &V) override;

  /// Renders the line format without a sink (used by tests and tools).
  static std::string formatLine(const Violation &V);

private:
  OStream &Out;
};

/// Adapts a callable into a sink — the paper's §2.6 future-work
/// "programmatic interface that would allow the programmer to test the
/// conditions directly and take action in an application-specific manner".
///
/// \code
///   CallbackViolationSink Sink([&](const Violation &V) {
///     if (V.Kind == AssertionKind::Dead)
///       Cache.clear(); // Application-specific recovery.
///   });
///   AssertionEngine Engine(TheVm, &Sink);
/// \endcode
template <typename CallbackT>
class CallbackViolationSink : public ViolationSink {
public:
  explicit CallbackViolationSink(CallbackT Callback)
      : Callback(std::move(Callback)) {}

  void report(const Violation &V) override { Callback(V); }

private:
  CallbackT Callback;
};

/// Forwards each violation to every registered sink, in order.
class TeeViolationSink : public ViolationSink {
public:
  TeeViolationSink() = default;
  TeeViolationSink(std::initializer_list<ViolationSink *> Targets)
      : Sinks(Targets) {}

  void addSink(ViolationSink *Sink) { Sinks.push_back(Sink); }

  void report(const Violation &V) override {
    for (ViolationSink *Sink : Sinks)
      Sink->report(V);
  }

private:
  std::vector<ViolationSink *> Sinks;
};

} // namespace gcassert

#endif // GCASSERT_CORE_VIOLATIONLOGSINK_H
