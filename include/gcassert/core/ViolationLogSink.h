//===- gcassert/core/ViolationLogSink.h - Structured logging ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sinks for deployed use (the paper's target setting: overhead "low
/// enough for use in a deployed setting" implies violations land in logs,
/// not on a developer's terminal):
///
///   * LineLogSink — one machine-parsable line per violation:
///       gc-assert|<cycle>|<kind>|<object type>|<message>|<path with ->`s>
///   * BoundedLogSink — LineLogSink with a per-cycle line budget, a
///       dropped-violation counter, and a bounded in-memory tail that is
///       appended to crash diagnostics.
///   * TeeViolationSink — fans a violation out to several sinks (e.g.
///       record in memory *and* log).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_CORE_VIOLATIONLOGSINK_H
#define GCASSERT_CORE_VIOLATIONLOGSINK_H

#include "gcassert/core/Violation.h"
#include "gcassert/support/ErrorHandling.h"

#include <deque>
#include <string>
#include <vector>

namespace gcassert {

class OStream;

/// One line per violation, machine-parsable, '|'-separated.
class LineLogSink : public ViolationSink {
public:
  explicit LineLogSink(OStream &Out) : Out(Out) {}

  void report(const Violation &V) override;

  /// Renders the line format without a sink (used by tests and tools).
  static std::string formatLine(const Violation &V);

private:
  OStream &Out;
};

/// LineLogSink with backpressure: a misbehaving assertion (or a storm of
/// violations under memory pressure) cannot flood the log or stall the
/// collector on a slow stream. At most Config::MaxLinesPerCycle lines are
/// written per GC cycle; the rest are counted in droppedViolations(). A
/// write failure (I/O error, or the "sink.write" failpoint) drops that
/// line too rather than aborting. The last Config::TailCapacity formatted
/// lines — including dropped ones — are kept in memory and printed into
/// crash diagnostics by reportFatalErrorWithDiagnostics().
class BoundedLogSink : public ViolationSink {
public:
  struct Config {
    /// Lines actually written to the stream per GC cycle; violations past
    /// the budget are counted and kept in the tail only.
    uint64_t MaxLinesPerCycle = 256;
    /// Formatted lines retained in memory for crash diagnostics.
    size_t TailCapacity = 32;
  };

  explicit BoundedLogSink(OStream &Out);
  BoundedLogSink(OStream &Out, Config Cfg);

  void report(const Violation &V) override;

  /// Violations whose line reached the stream / was dropped (budget
  /// exhausted or write failure). Together they count every report().
  uint64_t writtenViolations() const { return Written; }
  uint64_t droppedViolations() const { return Dropped; }

  const std::deque<std::string> &tailLines() const { return Tail; }

  /// Prints the retained tail (the crash-dump provider's body).
  void dumpTail(OStream &To) const;

private:
  OStream &Out;
  Config Cfg;
  std::deque<std::string> Tail;
  uint64_t Written = 0;
  uint64_t Dropped = 0;
  /// Cycle the current line budget belongs to; reset when V.Cycle moves.
  uint64_t BudgetCycle = 0;
  uint64_t LinesThisCycle = 0;
  bool BudgetCycleValid = false;
  /// Declared last so the provider (which reads the members above) is
  /// unregistered before any of them is destroyed.
  ScopedCrashDumpProvider CrashDump;
};

/// Adapts a callable into a sink — the paper's §2.6 future-work
/// "programmatic interface that would allow the programmer to test the
/// conditions directly and take action in an application-specific manner".
///
/// \code
///   CallbackViolationSink Sink([&](const Violation &V) {
///     if (V.Kind == AssertionKind::Dead)
///       Cache.clear(); // Application-specific recovery.
///   });
///   AssertionEngine Engine(TheVm, &Sink);
/// \endcode
template <typename CallbackT>
class CallbackViolationSink : public ViolationSink {
public:
  explicit CallbackViolationSink(CallbackT Callback)
      : Callback(std::move(Callback)) {}

  void report(const Violation &V) override { Callback(V); }

private:
  CallbackT Callback;
};

/// Forwards each violation to every registered sink, in order.
class TeeViolationSink : public ViolationSink {
public:
  TeeViolationSink() = default;
  TeeViolationSink(std::initializer_list<ViolationSink *> Targets)
      : Sinks(Targets) {}

  void addSink(ViolationSink *Sink) { Sinks.push_back(Sink); }

  void report(const Violation &V) override {
    for (ViolationSink *Sink : Sinks)
      Sink->report(V);
  }

private:
  std::vector<ViolationSink *> Sinks;
};

} // namespace gcassert

#endif // GCASSERT_CORE_VIOLATIONLOGSINK_H
