//===- gcassert/core/AssertionEngine.h - GC assertions ----------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AssertionEngine is the paper's contribution: the programmer-facing GC
/// assertion interface (§2) and the collector-side checking logic, attached
/// to a Vm's collector as its TraceHooks.
///
/// Supported assertions:
///   * assertDead(p)            — §2.3.1: p must be reclaimed at the next GC.
///   * startRegion/assertAllDead— §2.3.2: everything allocated by this
///                                thread inside the region must be dead when
///                                the region closes.
///   * assertInstances(T, I)    — §2.4.1: at most I live instances of T.
///   * assertUnshared(p)        — §2.5.1: p has at most one incoming pointer.
///   * assertOwnedBy(p, q)      — §2.5.2: q must remain reachable from p.
///
/// Checks run during the next collection, piggybacked on tracing; when a
/// check fails the engine emits a Violation (with the §2.7 full heap path)
/// to the configured sink and applies the configured ReactionPolicy.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_CORE_ASSERTIONENGINE_H
#define GCASSERT_CORE_ASSERTIONENGINE_H

#include "gcassert/core/OwnershipTable.h"
#include "gcassert/core/Violation.h"
#include "gcassert/gc/TraceHooks.h"
#include "gcassert/runtime/Vm.h"

#include <memory>
#include <mutex>
#include <unordered_set>

namespace gcassert {

/// Cumulative counters the benches report (the paper quotes e.g. "695 calls
/// to assert-dead and 15,553 calls to assert-ownedBy ... on average 15,274
/// ownee objects checked per GC" for _209_db).
struct EngineCounters {
  uint64_t AssertDeadCalls = 0;
  uint64_t AssertUnsharedCalls = 0;
  uint64_t AssertInstancesCalls = 0;
  uint64_t AssertVolumeCalls = 0;
  uint64_t AssertOwnedByCalls = 0;
  uint64_t RegionsOpened = 0;
  uint64_t RegionsClosed = 0;
  uint64_t RegionObjectsLogged = 0;
  uint64_t ViolationsReported = 0;
  /// Ownee lookups performed by the last completed GC / in total.
  uint64_t OwneesCheckedLastGc = 0;
  uint64_t OwneesCheckedTotal = 0;
  /// Owners scanned by the ownership phase, in total.
  uint64_t OwnersScannedTotal = 0;
  /// Collections observed by the engine.
  uint64_t GcCycles = 0;
};

/// How much optional work the engine has shed under memory pressure. The
/// ladder only ever sheds extras — the paper's core checks (dead, unshared,
/// instances, volume, ownedby) stay live at every level, so the violation
/// multiset for those kinds is pressure-independent.
enum class DegradationLevel : uint8_t {
  /// Everything on: §2.7 path recording, orphan watch, overlap warnings.
  Full = 0,
  /// Path recording shed (violations carry no heap paths; the collectors
  /// also regain the parallel tracer, see DESIGN.md §7).
  NoPaths = 1,
  /// Per-assertion bookkeeping shed too: no ownee-outlived-owner watch, no
  /// ownership-overlap warnings. Core checks only.
  CoreOnly = 2,
};

/// Occupancy thresholds for the degradation ladder. Occupancy is live
/// bytes after the previous collection over heap capacity — what the heap
/// *keeps* across collections, not the transient fullness that precedes
/// every allocation-triggered GC.
struct ShedConfig {
  /// Shed path recording at or above this live-occupancy fraction.
  double ShedPathsAt = 0.85;
  /// Shed per-assertion bookkeeping too at or above this fraction.
  double ShedBookkeepingAt = 0.95;
  /// Hysteresis: a level is restored only once occupancy falls this far
  /// below its shed threshold (and one level per cycle), so the ladder
  /// cannot flap around a threshold.
  double RestoreMargin = 0.05;
  /// How many cycles an onMemoryPressure escalation is held before
  /// occupancy alone decides again.
  uint32_t PressureHoldCycles = 2;
};

/// The GC assertion engine. Constructing one installs it as the Vm
/// collector's trace hooks (turning "Base" into "Infrastructure" in the
/// paper's terms); destroying it uninstalls.
class AssertionEngine : public TraceHooks {
public:
  /// \p Sink receives violations; when null a ConsoleViolationSink writing
  /// to stderr is used.
  explicit AssertionEngine(Vm &TheVm, ViolationSink *Sink = nullptr);
  ~AssertionEngine() override;

  /// \name Assertion interface (the paper's §2 API)
  /// @{

  /// Asserts that \p Obj is reclaimed at the next collection.
  void assertDead(ObjRef Obj);

  /// Asserts that \p Obj has at most one incoming reference.
  void assertUnshared(ObjRef Obj);

  /// Asserts that at most \p Limit instances of \p Type are live at each
  /// collection. Limit 0 checks that no instances exist at GC time.
  void assertInstances(TypeId Type, uint32_t Limit);

  /// Stops tracking instance counts for \p Type.
  void clearInstances(TypeId Type);

  /// Asserts that the live instances of \p Type occupy at most
  /// \p LimitBytes at each collection — §2.4's "total volume" constraint.
  void assertVolume(TypeId Type, uint64_t LimitBytes);

  /// Stops tracking live volume for \p Type.
  void clearVolume(TypeId Type);

  /// Asserts that \p Ownee never outlives \p Owner: at every collection, at
  /// least one path to \p Ownee must pass through \p Owner. Re-asserting an
  /// ownee replaces its owner.
  void assertOwnedBy(ObjRef Owner, ObjRef Ownee);

  /// Opens an allocation region on \p Thread (§2.3.2). Regions nest: the
  /// innermost region logs this thread's allocations.
  void startRegion(MutatorThread &Thread);

  /// Closes \p Thread's innermost region and asserts every object it
  /// allocated dead. Objects that already died are fine (their log entries
  /// were pruned at GC time).
  void assertAllDead(MutatorThread &Thread);
  /// @}

  /// \name Configuration
  /// @{
  void setReaction(AssertionKind Kind, ReactionPolicy Policy) {
    Reactions[static_cast<size_t>(Kind)] = Policy;
  }
  ReactionPolicy reaction(AssertionKind Kind) const {
    return Reactions[static_cast<size_t>(Kind)];
  }

  void setSink(ViolationSink *NewSink);

  /// When true (default), path steps resolve the field name of each edge.
  /// Figure 1 of the paper prints types only; field names are an extension.
  void setResolveFieldNames(bool Enable) { ResolveFieldNames = Enable; }

  /// Replaces the degradation ladder's thresholds. Escalation the new
  /// thresholds demand applies immediately (the collector samples
  /// allowPathRecording() before the cycle begins); de-escalation waits
  /// for the hysteresis at the next collection.
  void setShedConfig(const ShedConfig &Config);
  const ShedConfig &shedConfig() const { return Shed; }

  /// The current degradation level (updated at each onGcBegin and by
  /// memory-pressure notifications between collections).
  DegradationLevel degradationLevel() const { return Level; }
  /// @}

  const EngineCounters &counters() const { return Counters; }

  /// The ownership table, exposed for tests and benches.
  OwnershipTable &ownershipTable() { return Ownership; }

  /// \name TraceHooks implementation (called by the collector)
  /// @{
  void onGcBegin(uint64_t Cycle) override;
  void runOwnershipPhase(OwnershipScanDriver &Driver) override;
  void onDeadReachable(ObjRef Obj, const std::vector<ObjRef> &Path,
                       TracePhase Phase) override;
  bool severDeadReferences() const override;
  void onUnsharedShared(ObjRef Obj, const std::vector<ObjRef> &Path) override;
  void onUnownedOwnee(ObjRef Obj, const std::vector<ObjRef> &Path) override;
  PreRootAction classifyPreRoot(ObjRef Obj) override;
  void onTraceComplete(PostTraceContext &Ctx) override;
  void onMinorGcComplete(PostTraceContext &Ctx) override;
  bool allowPathRecording() const override {
    return Level == DegradationLevel::Full;
  }
  void onMemoryPressure(MemoryPressure Pressure) override;
  void onSnapshotOpen() override;
  void onSnapshotClose() override;
  /// @}

private:
  /// The level the current live occupancy alone asks for.
  struct DegradationTarget {
    DegradationLevel Level;
    double Occupancy;
  };
  DegradationTarget occupancyTarget() const;

  /// Recomputes Level from occupancy, the pressure latch, and the
  /// "engine.shed" failpoint; called at the top of each cycle.
  void updateDegradationLevel();

  /// Converts an object chain into named path steps.
  std::vector<PathStep> buildPath(const std::vector<ObjRef> &Chain) const;

  /// Emits \p V through the sink and applies the reaction policy.
  void emit(Violation V);

  /// Per-thread region state: a stack of allocation logs; the top log is
  /// what MutatorThread::regionLog() points at.
  struct ThreadRegionState {
    MutatorThread *Thread;
    std::vector<std::unique_ptr<std::vector<ObjRef>>> Stack;
  };

  ThreadRegionState &regionStateFor(MutatorThread &Thread);

  Vm &TheVm;
  ViolationSink *Sink;
  std::unique_ptr<ViolationSink> DefaultSink;

  OwnershipTable Ownership;
  std::vector<TypeId> TrackedTypes;
  std::vector<TypeId> VolumeTrackedTypes;
  std::vector<ThreadRegionState> RegionStates;
  /// Ownees whose owner died at the previous collection. Their liveness at
  /// *that* collection may have been an artifact of the ownership phase
  /// scanning from the (dead) owner — the paper's §2.5.2 memory-pressure
  /// caveat — so the OwneeOutlivedOwner verdict is deferred one cycle: if
  /// the ownee is still alive at the next collection, it genuinely
  /// outlived its owner. Weak references (pruned like the other tables).
  std::vector<ObjRef> OrphanedOwnees;

  ReactionPolicy Reactions[NumAssertionKinds];
  bool ResolveFieldNames = true;

  /// Degradation ladder state.
  ShedConfig Shed;
  DegradationLevel Level = DegradationLevel::Full;
  /// Highest level demanded by onMemoryPressure, held for
  /// Shed.PressureHoldCycles collections.
  DegradationLevel PressureLatch = DegradationLevel::Full;
  uint32_t PressureHoldRemaining = 0;

  /// Per-cycle state.
  uint64_t CurrentCycle = 0;
  ObjRef CurrentOwner = nullptr;
  /// True while phase 1 is scanning a deferred ownee's subtree (rather than
  /// the owner's own region): foreign ownees found there are silent
  /// truncation boundaries, not misuse.
  bool InDeferredScan = false;
  std::vector<ObjRef> DeferredOwnees;
  std::unordered_set<ObjRef> UnsharedReportedThisCycle;
  std::unordered_set<ObjRef> OverlapReportedThisCycle;

  /// Serializes the three hooks a parallel mark phase may fire from several
  /// workers at once (onDeadReachable, onUnsharedShared, onUnownedOwnee):
  /// they mutate the dedup sets, the counters, and the sink. The remaining
  /// TraceHooks run on the collecting thread only.
  std::mutex ParallelHookMutex;

  /// Serializes the registration entry points (assertDead, assertUnshared,
  /// assertInstances, assertVolume, assertOwnedBy, startRegion,
  /// assertAllDead) against each other: the serving workloads register
  /// assertions from concurrent mutator threads. Registration never
  /// allocates managed memory or reaches a safepoint poll while holding
  /// this lock, so a holder can never park and stall a stop-the-world
  /// rendezvous; and a registering mutator is by definition not parked, so
  /// registration never overlaps the GC-time hooks above (which run with
  /// the world stopped).
  std::mutex RegistrationMutex;

  /// assertDead's body without the lock, for assertAllDead (which flags a
  /// whole region log under one acquisition).
  void assertDeadLocked(ObjRef Obj);

  /// \name Snapshot-cycle registration deferral (DESIGN.md §15)
  ///
  /// Between onSnapshotOpen and onSnapshotClose an incremental cycle is
  /// checking the heap as of its snapshot pause. A registration landing
  /// mid-cycle must not perturb that check — setting HF_Dead now could make
  /// this cycle's trace report an object that was not dead-asserted at the
  /// snapshot; changing an instance limit would corrupt the census being
  /// accumulated. So the state mutations queue here (FIFO, under
  /// RegistrationMutex) and apply at onSnapshotClose, after the sweep —
  /// which is exactly when a stop-the-world run would first see them: after
  /// collection K, checked at K+1. Counters still bump at call time (the
  /// call happened); only the heap/table mutations wait. Every queued
  /// target is either snapshot-reachable or allocated black during the
  /// cycle (a mutator can only name such objects), so it survives the
  /// terminal sweep and the deferred mutation lands on a live object.
  /// @{
  struct DeferredRegistration {
    enum class Op : uint8_t {
      Dead,
      Unshared,
      Instances,
      ClearInstances,
      Volume,
      ClearVolume,
      OwnedBy,
    };
    Op Kind;
    ObjRef A = nullptr; ///< Dead/Unshared target; OwnedBy owner.
    ObjRef B = nullptr; ///< OwnedBy ownee.
    TypeId Type = 0;    ///< Instances/Volume type.
    uint64_t Limit = 0; ///< Instances/Volume limit.
  };
  /// Applies one queued registration's state mutation (no counters).
  void applyRegistration(const DeferredRegistration &R);
  /// Pure state mutations shared by the immediate and deferred paths.
  void applyInstances(TypeId Type, uint32_t Limit);
  void applyClearInstances(TypeId Type);
  void applyVolume(TypeId Type, uint64_t LimitBytes);
  void applyClearVolume(TypeId Type);

  /// Guarded by RegistrationMutex (the GC-time toggles in
  /// onSnapshotOpen/Close run with the world stopped, where no mutator can
  /// be inside a registration; they still take the mutex so the
  /// happens-before story is trivial).
  bool SnapshotActive = false;
  std::vector<DeferredRegistration> DeferredRegs;
  /// @}

  EngineCounters Counters;
};

} // namespace gcassert

#endif // GCASSERT_CORE_ASSERTIONENGINE_H
