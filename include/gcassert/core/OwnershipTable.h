//===- gcassert/core/OwnershipTable.h - Owner/ownee pairs -------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for assert-ownedby pairs (§2.5.2).
///
/// Following the paper, the table is "a pair of arrays": a sorted array of
/// (ownee, owner) pairs searched by binary search during tracing (the
/// paper's "ownee arrays are sorted, so we do a binary search"), plus the
/// list of distinct owners the ownership phase iterates. Mutator-side
/// assertOwnedBy calls append to a pending buffer that is merged at the
/// start of the next collection, so the mutator never pays for sorting.
///
/// The table holds weak references: pairs do not keep objects alive and are
/// pruned after every collection.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_CORE_OWNERSHIPTABLE_H
#define GCASSERT_CORE_OWNERSHIPTABLE_H

#include "gcassert/heap/Object.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace gcassert {

/// Sorted owner/ownee pair table with deferred insertion.
class OwnershipTable {
public:
  struct Pair {
    ObjRef Ownee;
    ObjRef Owner;
  };

  /// Registers "\p Ownee is owned by \p Owner". Sets the HF_Owner /
  /// HF_Ownee header bits immediately; the pair becomes searchable after the
  /// next mergePending(). Re-asserting an ownee replaces its owner.
  void add(ObjRef Owner, ObjRef Ownee);

  /// Folds the pending buffer into the sorted array and rebuilds the owner
  /// list. Called at the start of every collection. Also clears every
  /// ownee's HF_Owned bit for the new cycle.
  void beginCycle();

  /// Binary-searches the sorted array for \p Ownee's owner; null if \p Ownee
  /// is not registered. Counts the lookup (the paper reports "ownee objects
  /// checked" per GC).
  ObjRef lookupOwner(ObjRef Ownee);

  /// Distinct owners, in address order. Valid after beginCycle().
  const std::vector<ObjRef> &owners() const { return Owners; }

  /// Number of merged pairs (pending additions not included).
  size_t size() const { return Pairs.size(); }
  bool empty() const { return Pairs.empty() && PendingAdds.empty(); }

  /// Calls \p Fn for every merged pair.
  void forEachPair(const std::function<void(const Pair &)> &Fn) const;

  /// Post-GC maintenance: translates both sides of each pair through
  /// \p CurrentAddress (which returns null for dead objects and the new
  /// address under a moving collector).
  ///
  ///  * ownee dead            -> pair removed (paper §3.1.2: "we must
  ///                             remove each unreachable ownee after a GC");
  ///  * owner dead, ownee live-> pair removed and \p OnOwneeOutlivedOwner
  ///                             called (extension, see DESIGN.md §6);
  ///  * both live             -> pair kept at the new addresses.
  ///
  /// Header bits are maintained: removed ownees lose HF_Ownee/HF_Owned and
  /// owners that lose their last pair lose HF_Owner.
  void pruneAfterGc(
      const std::function<ObjRef(ObjRef)> &CurrentAddress,
      const std::function<void(ObjRef Owner, ObjRef Ownee)>
          &OnOwneeOutlivedOwner);

  /// Translates the pending (not yet merged) additions through
  /// \p CurrentAddress. Pairs whose ownee died are dropped; pairs whose
  /// owner died with a live ownee are dropped after calling
  /// \p OnOwneeOutlivedOwner. Needed by generational minor collections,
  /// which move objects between the mutator's assertOwnedBy call and the
  /// next merge.
  void translatePending(
      const std::function<ObjRef(ObjRef)> &CurrentAddress,
      const std::function<void(ObjRef Owner, ObjRef Ownee)>
          &OnOwneeOutlivedOwner);

  /// \name Counters
  /// @{
  uint64_t lookupsThisCycle() const { return CycleLookups; }
  uint64_t lookupsTotal() const { return TotalLookups; }
  /// @}

private:
  void rebuildOwners();

  /// Merged pairs, sorted by ownee address.
  std::vector<Pair> Pairs;
  /// Pairs added since the last beginCycle(), unsorted.
  std::vector<Pair> PendingAdds;
  /// Distinct owners of the merged pairs, sorted.
  std::vector<ObjRef> Owners;

  uint64_t CycleLookups = 0;
  uint64_t TotalLookups = 0;
};

} // namespace gcassert

#endif // GCASSERT_CORE_OWNERSHIPTABLE_H
