//===- gcassert/runtime/MutatorThread.h - Mutator contexts ------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MutatorThread is a logical mutator context: a stack of handle (local
/// root) slots plus the per-thread region hook the paper's assert-alldead
/// needs ("Each thread in Jikes RVM has a boolean flag to indicate whether
/// it is currently in an alldead region, and a queue...", §2.3.2).
///
/// A MutatorThread may be driven cooperatively (a workload stepping several
/// logical threads from one OS thread, deterministically) or bound to a real
/// OS thread via Vm::startMutator, in which case it also carries the
/// thread's TLABs and its owner must reach safepoint polls (see DESIGN.md
/// §5 and §13). Either way, a MutatorThread is touched by exactly one OS
/// thread at a time outside a stop-the-world pause.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_RUNTIME_MUTATORTHREAD_H
#define GCASSERT_RUNTIME_MUTATORTHREAD_H

#include "gcassert/heap/Object.h"
#include "gcassert/heap/Tlab.h"

#include <memory>
#include <string>
#include <vector>

namespace gcassert {

class MutatorThread;

/// A stable local root slot. Copyable; the referenced slot lives until the
/// enclosing HandleScope closes.
class Local {
public:
  Local() = default;

  ObjRef get() const;
  void set(ObjRef Obj);

  explicit operator bool() const { return get() != nullptr; }

private:
  friend class MutatorThread;
  Local(MutatorThread *Thread, uint32_t Index)
      : Thread(Thread), Index(Index) {}

  MutatorThread *Thread = nullptr;
  uint32_t Index = 0;
};

/// One logical mutator thread.
class MutatorThread {
public:
  MutatorThread(uint32_t Id, std::string Name)
      : Id(Id), Name(std::move(Name)) {}

  MutatorThread(const MutatorThread &) = delete;
  MutatorThread &operator=(const MutatorThread &) = delete;

  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }

  /// \name Handle (local root) stack
  /// @{
  size_t handleCount() const { return Handles.size(); }

  Local pushHandle(ObjRef Obj) {
    Handles.push_back(Obj);
    return Local(this, static_cast<uint32_t>(Handles.size() - 1));
  }

  void truncateHandles(size_t NewCount) {
    assert(NewCount <= Handles.size() && "cannot grow by truncation");
    Handles.resize(NewCount);
  }

  ObjRef handleValue(uint32_t Index) const {
    assert(Index < Handles.size() && "handle index out of range");
    return Handles[Index];
  }

  void setHandleValue(uint32_t Index, ObjRef Obj) {
    assert(Index < Handles.size() && "handle index out of range");
    Handles[Index] = Obj;
  }

  /// Calls \p Fn with the address of every handle slot, for root scanning.
  template <typename FnT> void forEachHandleSlot(FnT Fn) {
    for (ObjRef &Slot : Handles)
      Fn(&Slot);
  }
  /// @}

  /// \name Region hook (assert-alldead support, §2.3.2)
  ///
  /// When the assertion engine opens a region on this thread it points
  /// RegionLog at the region's allocation queue; the VM's allocation path
  /// appends every new object while the pointer is set. This is the paper's
  /// per-thread flag + queue, with the flag folded into the pointer's
  /// nullness. The queue holds weak references: entries do not keep objects
  /// alive and are pruned by the engine after each GC.
  /// @{
  std::vector<ObjRef> *regionLog() const { return RegionLog; }
  void setRegionLog(std::vector<ObjRef> *Log) { RegionLog = Log; }
  /// @}

  /// \name Thread-local allocation buffers
  ///
  /// The VM attaches a TlabSet when the active heap supports TLAB
  /// allocation (mark-sweep with VmConfig::Tlab on); null otherwise. Only
  /// the owning OS thread touches it outside a stop-the-world pause.
  /// @{
  TlabSet *tlabs() const { return Tlabs.get(); }
  void setTlabs(std::unique_ptr<TlabSet> T) { Tlabs = std::move(T); }
  /// @}

  /// \name Incremental pacing (DESIGN.md §15)
  ///
  /// Allocations remaining until this thread's next incremental pacing
  /// poll. The Vm seeds it with GcConfig::IncrementalSliceAllocs when
  /// incremental marking is configured and decrements it at every
  /// Vm::allocate; on expiry the thread runs a mark slice (or begins a
  /// cycle) and reloads. Touched only by the owning OS thread.
  /// @{
  uint32_t &incrementalCountdown() { return IncrementalCountdown; }
  /// @}

private:
  uint32_t Id;
  std::string Name;
  std::vector<ObjRef> Handles;
  std::vector<ObjRef> *RegionLog = nullptr;
  std::unique_ptr<TlabSet> Tlabs;
  /// 0 disables pacing for this thread (the Vm seeds it when configured).
  uint32_t IncrementalCountdown = 0;
};

inline ObjRef Local::get() const {
  assert(Thread && "reading an empty Local");
  return Thread->handleValue(Index);
}

inline void Local::set(ObjRef Obj) {
  assert(Thread && "writing an empty Local");
  Thread->setHandleValue(Index, Obj);
}

/// RAII scope that releases all handles created within it.
class HandleScope {
public:
  explicit HandleScope(MutatorThread &Thread)
      : Thread(Thread), SavedCount(Thread.handleCount()) {}

  ~HandleScope() { Thread.truncateHandles(SavedCount); }

  HandleScope(const HandleScope &) = delete;
  HandleScope &operator=(const HandleScope &) = delete;

  /// Creates a new local root slot holding \p Obj.
  Local handle(ObjRef Obj = nullptr) { return Thread.pushHandle(Obj); }

private:
  MutatorThread &Thread;
  size_t SavedCount;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_MUTATORTHREAD_H
