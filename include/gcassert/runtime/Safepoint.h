//===- gcassert/runtime/Safepoint.h - Stop-the-world protocol ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The poll-based stop-the-world safepoint protocol (DESIGN.md §13).
///
/// Mutators are real OS threads. Before the collector (and the assertion
/// checks that piggyback on it) may touch the heap, every registered mutator
/// must be parked at a well-defined point where it holds no raw object
/// pointer mid-initialization. The protocol is the classic poll-based
/// rendezvous:
///
///   * Each mutator polls a request flag at cheap poll sites (every
///     Vm::allocate, plus explicit Vm::safepointPoll calls at loop edges).
///     The disarmed cost is one relaxed load and a predicted branch.
///   * A thread that wants the world stopped (any mutator whose allocation
///     failed, or an explicit collectNow) acquires the GC lock, raises the
///     flag, and waits until every *other* registered thread is either
///     parked at a poll or inside a SafepointSafeScope (the "native /
///     blocked" state: such threads promise not to touch the heap and are
///     stopped by definition).
///   * After the protected work, the requester lowers the flag, bumps the
///     epoch, and wakes the parked threads — then waits for them to actually
///     leave the park so back-to-back stops never observe stale counts.
///
/// The coordinator counts threads; it does not need their identities. The
/// thread that constructs the Vm is attached implicitly ("the owner");
/// threads started through Vm::startMutator attach on entry and detach on
/// exit, and both operations wait out a pending stop so the registered set
/// is stable while a rendezvous is forming.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_RUNTIME_SAFEPOINT_H
#define GCASSERT_RUNTIME_SAFEPOINT_H

#include "gcassert/support/Compiler.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace gcassert {

/// Coordinates stop-the-world pauses between registered mutator threads.
/// One per Vm.
class SafepointCoordinator {
public:
  SafepointCoordinator();
  ~SafepointCoordinator();

  SafepointCoordinator(const SafepointCoordinator &) = delete;
  SafepointCoordinator &operator=(const SafepointCoordinator &) = delete;

  /// The poll every mutator executes at allocation and loop-edge sites.
  /// One relaxed load when no stop is pending.
  void poll() {
    if (GCA_UNLIKELY(Requested.load(std::memory_order_relaxed)))
      parkSlow();
  }

  /// \name Requester side
  /// @{

  /// Stops the world: serializes with other requesters (polling while it
  /// waits, so a losing requester still parks for the winner), raises the
  /// request flag, and returns once every other registered thread is parked
  /// or safe. Aborts with diagnostics if a mutator fails to reach a poll
  /// within the rendezvous timeout (the "safepoint.timeout" failpoint
  /// forces that path deterministically).
  void beginStopTheWorld();

  /// Resumes the world: lowers the flag, bumps the epoch, wakes parked
  /// threads, and drains the park so the next rendezvous starts clean.
  void endStopTheWorld();
  /// @}

  /// \name Thread registry
  /// @{

  /// Registers the calling OS thread as a mutator. Waits out a pending
  /// stop first, so a forming rendezvous never misses a newcomer.
  void attachCurrentThread();

  /// Unregisters the calling OS thread. Legal while a stop is pending:
  /// the exiting thread will never poll again, so it reports itself out of
  /// the rendezvous instead of parking.
  void detachCurrentThread();

  /// Currently registered OS threads (the owner counts as one).
  unsigned registeredCount() const;

  /// Completed stop-the-world pauses.
  uint64_t epoch() const;
  /// @}

private:
  friend class SafepointSafeScope;

  GCA_NOINLINE void parkSlow();
  void enterSafe();
  void leaveSafe();

  /// Serializes requesters; held for the whole stop-the-world window.
  std::mutex GcMutex;

  /// Guards every count below plus Requested's transitions (the flag itself
  /// is atomic only so poll() can read it without the lock).
  mutable std::mutex Mu;
  std::condition_variable CvParked;  ///< A thread parked/went safe/detached.
  std::condition_variable CvResume;  ///< The world resumed.
  std::condition_variable CvDrained; ///< The last parked thread left.

  std::atomic<bool> Requested{false};
  unsigned Registered = 1; ///< The constructing thread is the owner.
  unsigned Parked = 0;     ///< Threads waiting inside parkSlow().
  unsigned Safe = 0;       ///< Threads inside a SafepointSafeScope.
  uint64_t Epoch = 0;
};

/// Marks the calling registered mutator as "safe" (will not touch the heap)
/// for the scope's lifetime, so it does not block a stop-the-world pause —
/// the mutator analog of a native-code transition. Required around any
/// blocking operation, most importantly joining another mutator (the joined
/// thread may need a GC to finish). Leaving the scope waits out a pending
/// stop: a stopped world never regains a running mutator.
class SafepointSafeScope {
public:
  explicit SafepointSafeScope(SafepointCoordinator &C) : C(C) { C.enterSafe(); }
  ~SafepointSafeScope() { C.leaveSafe(); }

  SafepointSafeScope(const SafepointSafeScope &) = delete;
  SafepointSafeScope &operator=(const SafepointSafeScope &) = delete;

private:
  SafepointCoordinator &C;
};

/// RAII stop-the-world window.
class StopTheWorldScope {
public:
  explicit StopTheWorldScope(SafepointCoordinator &C) : C(C) {
    C.beginStopTheWorld();
  }
  ~StopTheWorldScope() { C.endStopTheWorld(); }

  StopTheWorldScope(const StopTheWorldScope &) = delete;
  StopTheWorldScope &operator=(const StopTheWorldScope &) = delete;

private:
  SafepointCoordinator &C;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_SAFEPOINT_H
