//===- gcassert/runtime/Vm.h - Virtual machine facade -----------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vm wires a heap, a collector, the type registry and the mutator threads
/// into one runtime — the role Jikes RVM plays for the paper. Programs (the
/// workloads, examples and tests) allocate through Vm::allocate, which runs
/// a collection on exhaustion and retries.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_RUNTIME_VM_H
#define GCASSERT_RUNTIME_VM_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/Heap.h"
#include "gcassert/runtime/MutatorThread.h"
#include "gcassert/support/Compiler.h"

#include <functional>
#include <memory>
#include <vector>

namespace gcassert {

/// Which collector/heap pair the VM runs.
enum class CollectorKind : uint8_t {
  /// Full-heap mark-sweep over the segregated free-list heap (the paper's
  /// evaluated configuration).
  MarkSweep,
  /// Copying collector over a two-space heap (collector-independence
  /// demonstration).
  SemiSpace,
  /// Mark-compact collector: checking trace, then sliding compaction of
  /// the single contiguous space (a third collector mechanic for §2.2).
  MarkCompact,
  /// Two-generation collector: nursery evacuation on allocation pressure,
  /// full checking mark-sweep on explicit collections or old-gen pressure.
  /// Assertions are checked only at the major collections (§2.2). At most
  /// one generational VM may be live per process (it owns the store
  /// barrier).
  Generational,
};

/// VM construction parameters.
struct VmConfig {
  size_t HeapBytes = 64u << 20;
  CollectorKind Collector = CollectorKind::MarkSweep;
  /// GC tuning (worker-thread count, ...), forwarded to the collector.
  GcConfig Gc;
};

/// A stable global root slot, releasable by id.
using GlobalRootId = uint32_t;

/// The virtual machine: heap + collector + threads + roots.
class Vm : public RootProvider {
public:
  explicit Vm(const VmConfig &Config = VmConfig());
  ~Vm() override;

  TypeRegistry &types() { return Types; }
  Heap &heap() { return *TheHeap; }
  Collector &collector() { return *TheCollector; }
  CollectorKind collectorKind() const { return Kind; }

  /// \name Threads
  /// @{
  MutatorThread &mainThread() { return *Threads.front(); }

  /// Creates a new logical mutator thread owned by the VM.
  MutatorThread &spawnThread(const std::string &Name);

  /// Calls \p Fn for every thread.
  void forEachThread(const std::function<void(MutatorThread &)> &Fn);
  /// @}

  /// \name Allocation
  /// @{

  /// Allocates an object of \p Id on behalf of \p Thread, collecting and
  /// retrying on exhaustion. Aborts the process if the heap is still full
  /// after a collection. Array types require \p ArrayLength.
  ObjRef allocate(MutatorThread &Thread, TypeId Id, uint64_t ArrayLength = 0) {
    ObjRef Obj = TheHeap->allocate(Id, ArrayLength);
    if (GCA_UNLIKELY(!Obj))
      Obj = allocateSlowPath(Id, ArrayLength);
    if (GCA_UNLIKELY(Thread.regionLog() != nullptr))
      Thread.regionLog()->push_back(Obj);
    if (GCA_UNLIKELY(HasAllocListener))
      AllocListener(Obj);
    return Obj;
  }

  /// Installs an observer for every successful allocation (used by the
  /// heuristic leak detectors; null to remove).
  void setAllocationListener(std::function<void(ObjRef)> Listener);
  /// @}

  /// Runs a collection immediately.
  void collectNow(const char *Cause = "explicit");

  /// \name Global roots
  /// @{
  GlobalRootId addGlobalRoot(ObjRef Obj = nullptr);
  void removeGlobalRoot(GlobalRootId Id);
  ObjRef globalRoot(GlobalRootId Id) const { return GlobalRoots[Id]; }
  void setGlobalRoot(GlobalRootId Id, ObjRef Obj) { GlobalRoots[Id] = Obj; }
  /// @}

  /// RootProvider: globals plus every thread's handles.
  void forEachRootSlot(const std::function<void(ObjRef *)> &Fn) override;

  const GcStats &gcStats() const { return TheCollector->stats(); }

private:
  GCA_NOINLINE ObjRef allocateSlowPath(TypeId Id, uint64_t ArrayLength);

  TypeRegistry Types;
  CollectorKind Kind;
  std::unique_ptr<Heap> TheHeap;
  std::unique_ptr<Collector> TheCollector;
  std::vector<std::unique_ptr<MutatorThread>> Threads;
  std::vector<ObjRef> GlobalRoots;
  std::vector<GlobalRootId> FreeGlobalSlots;
  bool HasAllocListener = false;
  std::function<void(ObjRef)> AllocListener;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_VM_H
