//===- gcassert/runtime/Vm.h - Virtual machine facade -----------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vm wires a heap, a collector, the type registry and the mutator threads
/// into one runtime — the role Jikes RVM plays for the paper. Programs (the
/// workloads, examples and tests) allocate through Vm::allocate, which runs
/// a collection on exhaustion and retries.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_RUNTIME_VM_H
#define GCASSERT_RUNTIME_VM_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/FreeListHeap.h"
#include "gcassert/heap/Heap.h"
#include "gcassert/runtime/MutatorThread.h"
#include "gcassert/runtime/Safepoint.h"
#include "gcassert/support/Compiler.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace gcassert {

class MarkSweepCollector;

/// Which collector/heap pair the VM runs.
enum class CollectorKind : uint8_t {
  /// Full-heap mark-sweep over the segregated free-list heap (the paper's
  /// evaluated configuration).
  MarkSweep,
  /// Copying collector over a two-space heap (collector-independence
  /// demonstration).
  SemiSpace,
  /// Mark-compact collector: checking trace, then sliding compaction of
  /// the single contiguous space (a third collector mechanic for §2.2).
  MarkCompact,
  /// Two-generation collector: nursery evacuation on allocation pressure,
  /// full checking mark-sweep on explicit collections or old-gen pressure.
  /// Assertions are checked only at the major collections (§2.2). At most
  /// one generational VM may be live per process (it owns the store
  /// barrier).
  Generational,
};

/// What Vm::allocate does when the emergency cascade (collection, emergency
/// full collection, OOM handlers) cannot free enough memory.
enum class OomPolicy : uint8_t {
  /// Abort the process with crash diagnostics (the historical behavior and
  /// the default — library code stays exception-free).
  Abort,
  /// Return null from Vm::allocate; the caller sheds load.
  ReturnNull,
  /// Run the registered OOM handlers (each may free memory and request a
  /// retry); if none succeeds, return null.
  RunOomHandlers,
};

/// VM construction parameters.
struct VmConfig {
  size_t HeapBytes = 64u << 20;
  CollectorKind Collector = CollectorKind::MarkSweep;
  /// GC tuning (worker-thread count, ...), forwarded to the collector.
  GcConfig Gc;
  /// Out-of-memory policy; see OomPolicy (changeable later with
  /// Vm::setOomPolicy).
  OomPolicy OnOom = OomPolicy::Abort;
  /// Thread-local allocation buffers for the mark-sweep heap: per-thread
  /// bump allocation refilled in batches from the shared free lists, so
  /// concurrent mutators do not serialize on the heap lock per object.
  /// Ignored by the other collectors (their heaps are single bump pointers
  /// already; they take one lock per allocation instead) and by the
  /// hardened modes (hardening validates every free-list pop — exactly
  /// what a batched refill would skip).
  bool Tlab = true;
  /// Per-(thread, size class) TLAB ceiling; adaptive sizing grows each
  /// class's buffer from TlabSet::MinBytes toward this on every refill and
  /// shrinks it again when a safepoint retires a mostly-unused buffer.
  size_t TlabMaxBytes = TlabSet::DefaultMaxBytes;
};

/// A stable global root slot, releasable by id.
using GlobalRootId = uint32_t;

class Vm;

/// Owns one OS mutator thread started with Vm::startMutator. join() marks
/// the calling thread safe (SafepointSafeScope) while it waits, so a
/// collection the joined mutator needs to finish can still stop the world.
/// Destruction joins.
class MutatorHandle {
public:
  MutatorHandle() = default;
  MutatorHandle(MutatorHandle &&) = default;
  MutatorHandle &operator=(MutatorHandle &&) = default;
  ~MutatorHandle() { join(); }

  /// Waits for the mutator to finish. Safe to call from any registered
  /// mutator thread; no-op when already joined.
  void join();

  bool joinable() const { return Thread.joinable(); }

private:
  friend class Vm;
  MutatorHandle(Vm *Owner, std::thread T)
      : Owner(Owner), Thread(std::move(T)) {}

  Vm *Owner = nullptr;
  std::thread Thread;
};

/// The virtual machine: heap + collector + threads + roots.
class Vm : public RootProvider {
public:
  explicit Vm(const VmConfig &Config = VmConfig());
  ~Vm() override;

  TypeRegistry &types() { return Types; }
  Heap &heap() { return *TheHeap; }
  Collector &collector() { return *TheCollector; }
  CollectorKind collectorKind() const { return Kind; }

  /// \name Threads
  /// @{
  MutatorThread &mainThread() { return *Main; }

  /// Creates a new logical mutator thread owned by the VM. Thread-safe.
  MutatorThread &spawnThread(const std::string &Name);

  /// Calls \p Fn for every thread. Thread-safe against concurrent
  /// spawnThread/startMutator; \p Fn must not spawn threads itself.
  void forEachThread(const std::function<void(MutatorThread &)> &Fn);

  /// Starts a real OS mutator thread: spawns a MutatorThread context,
  /// registers the OS thread with the safepoint protocol, and runs \p Body
  /// on it. The body must allocate only through Vm::allocate (a poll site)
  /// and call safepointPoll() inside any long allocation-free loop.
  MutatorHandle startMutator(const std::string &Name,
                             std::function<void(Vm &, MutatorThread &)> Body);

  /// Starts \p N mutators running \p Body and joins them all.
  void runMutators(unsigned N, const std::string &NamePrefix,
                   std::function<void(Vm &, MutatorThread &)> Body);
  /// @}

  /// \name Safepoints
  /// @{
  SafepointCoordinator &safepoints() { return Safepoints; }

  /// Explicit poll site for allocation-free loops.
  void safepointPoll() { Safepoints.poll(); }

  /// Stops the world (every registered mutator parked at a poll or inside
  /// a safe scope), runs \p Fn, resumes. This is how the collectors get
  /// their stop-the-world window; tools that need a consistent heap view
  /// (snapshots, verification outside a GC) use it too. Not reentrant.
  void stopTheWorldAndRun(const std::function<void()> &Fn);
  /// @}

  /// \name Allocation
  /// @{

  /// Allocates an object of \p Id on behalf of \p Thread, collecting and
  /// retrying on exhaustion through the emergency cascade (collection →
  /// emergency full collection → OOM handlers, per the configured
  /// OomPolicy). Returns null only under OomPolicy::ReturnNull /
  /// RunOomHandlers once the cascade is exhausted; under OomPolicy::Abort
  /// (the default) the process aborts with crash diagnostics instead.
  /// Array types require \p ArrayLength.
  ObjRef allocate(MutatorThread &Thread, TypeId Id, uint64_t ArrayLength = 0) {
    Safepoints.poll();
    // Incremental pacing tick (DESIGN.md §15), before the allocation: a
    // cycle beginning here must take its snapshot before this object
    // exists, so the fresh object is born black (allocated during the
    // cycle) rather than snapshot-unreachable and swept out from under
    // the caller. Pacing off: one predicted branch.
    if (GCA_UNLIKELY(IncPacing) && --Thread.incrementalCountdown() == 0) {
      Thread.incrementalCountdown() = IncPaceAllocs;
      incrementalPacePoll();
    }
    // TLAB fast path (mark-sweep only): a pure bump in this thread's
    // buffer, no lock taken. Everything else funnels through the heap's
    // own (internally locked) allocate.
    ObjRef Obj = TlabHeap
                     ? TlabHeap->allocateWithTlab(*Thread.tlabs(), Id,
                                                  ArrayLength)
                     : TheHeap->allocate(Id, ArrayLength);
    if (GCA_UNLIKELY(!Obj))
      Obj = allocateSlowPath(Id, ArrayLength);
    // "corrupt.header" / "corrupt.ref" simulate the memory errors the
    // hardened heap exists to catch: a flipped header bit and a scribbled
    // reference slot. Out of line — the disarmed cost is the two relaxed
    // loads in shouldFail().
    if (GCA_UNLIKELY(faults::CorruptHeader.shouldFail()) && Obj)
      injectHeaderCorruption(Obj);
    if (GCA_UNLIKELY(faults::CorruptRef.shouldFail()) && Obj)
      injectRefCorruption(Obj);
    if (GCA_UNLIKELY(Thread.regionLog() != nullptr))
      Thread.regionLog()->push_back(Obj);
    if (GCA_UNLIKELY(HasAllocListener))
      AllocListener(Obj);
    return Obj;
  }

  /// Installs an observer for every successful allocation (used by the
  /// heuristic leak detectors; null to remove). With concurrent mutators
  /// the listener runs on every allocating thread and must synchronize its
  /// own state.
  void setAllocationListener(std::function<void(ObjRef)> Listener);
  /// @}

  /// Runs a collection immediately.
  void collectNow(const char *Cause = "explicit");

  /// \name Incremental marking (DESIGN.md §15)
  /// Explicit driving of incremental cycles, for harnesses and tests that
  /// want deterministic phase boundaries instead of (or on top of) the
  /// allocation-tick pacing. Valid only when the VM was built with
  /// CollectorKind::MarkSweep and VmConfig::Gc.Incremental; no-ops
  /// otherwise. Each call stops the world for its pause.
  /// @{

  /// True while an incremental cycle is in flight.
  bool incrementalCycleActive() const {
    return IncCycleRunning.load(std::memory_order_relaxed);
  }

  /// Begins an incremental cycle (snapshot pause). No-op if one is
  /// already in flight.
  void incrementalBeginNow(const char *Cause = "explicit");

  /// Runs one budgeted mark slice of the in-flight cycle; when the slice
  /// drains the worklist the terminal pause (checks + sweep) runs in the
  /// same stop-the-world window. No-op with no cycle in flight.
  void incrementalStepNow();

  /// Completes the in-flight cycle: remaining mark work, checks, sweep,
  /// barrier teardown. No-op with no cycle in flight.
  void incrementalFinishNow();
  /// @}

  /// \name Out-of-memory handling
  /// @{

  void setOomPolicy(OomPolicy Policy) { OnOom = Policy; }
  OomPolicy oomPolicy() const { return OnOom; }

  /// Registers an OOM handler for OomPolicy::RunOomHandlers. When the
  /// emergency cascade fails, handlers run in registration order with the
  /// needed byte count; a handler returns true if it released memory
  /// (dropped caches, cleared a global root, ...), which triggers another
  /// collection and retry before the next handler is consulted. Handlers
  /// must not allocate from this VM. Returns an id for removeOomHandler.
  using OomHandlerId = uint32_t;
  OomHandlerId addOomHandler(std::function<bool(uint64_t NeededBytes)> Fn);
  void removeOomHandler(OomHandlerId Id);

  /// How many allocations returned null to the mutator after the cascade
  /// (OomPolicy::ReturnNull, or RunOomHandlers with no handler helping).
  uint64_t oomNullReturns() const { return OomNullReturns; }
  /// @}

  /// \name Global roots
  /// @{
  GlobalRootId addGlobalRoot(ObjRef Obj = nullptr);
  void removeGlobalRoot(GlobalRootId Id);
  ObjRef globalRoot(GlobalRootId Id) const { return GlobalRoots[Id]; }
  void setGlobalRoot(GlobalRootId Id, ObjRef Obj) { GlobalRoots[Id] = Obj; }
  /// @}

  /// RootProvider: globals plus every thread's handles.
  void forEachRootSlot(const std::function<void(ObjRef *)> &Fn) override;

  const GcStats &gcStats() const { return TheCollector->stats(); }

  /// The hardened-heap subsystem, or null when VmConfig::Gc.Hardening is
  /// Off.
  HeapHardening *hardening() const { return Hard.get(); }

  /// Installs a callback run after every completed collection, whatever
  /// triggered it (explicit, allocation pressure, emergency cascade).
  /// The harness's --verify-heap hangs a full HeapVerifier pass here.
  void setPostGcCallback(std::function<void()> Fn) {
    PostGcCallback = std::move(Fn);
  }

private:
  GCA_NOINLINE ObjRef allocateSlowPath(TypeId Id, uint64_t ArrayLength);
  GCA_NOINLINE ObjRef handleAllocationExhausted(TypeId Id,
                                                uint64_t ArrayLength);
  GCA_NOINLINE void injectHeaderCorruption(ObjRef Obj);
  GCA_NOINLINE void injectRefCorruption(ObjRef Obj);
  /// All collections funnel through here so PostGcCallback fires on every
  /// completed cycle. Callers hold the stop-the-world window.
  void runCollectorCycle(const char *Cause);
  /// The allocation tick's slow path: advances the in-flight incremental
  /// cycle by one slice (finishing it when marking is done) or begins one
  /// when the occupancy trigger says so. Called every
  /// GcConfig::IncrementalSliceAllocs allocations per thread.
  GCA_NOINLINE void incrementalPacePoll();
  /// Terminal pause body shared by every finish path: TLAB retirement,
  /// checksum sync, MarkSweepCollector::finishCycle, PostGcCallback.
  /// Caller holds the stop-the-world window.
  void finishIncrementalLocked();
  /// Retires every thread's TLABs (and the heap's partially-carved TLAB
  /// blocks) so the sweep sees a parseable heap. Stop-the-world only.
  void retireAllTlabs();
  void notifyMemoryPressure(MemoryPressure Pressure);
  void dumpCrashDiagnostics();

  TypeRegistry Types;
  CollectorKind Kind;
  SafepointCoordinator Safepoints;
  std::unique_ptr<Heap> TheHeap;
  /// Non-null only for MarkSweep with VmConfig::Tlab: TheHeap, downcast
  /// once so the inline fast path skips the virtual dispatch too.
  FreeListHeap *TlabHeap = nullptr;
  size_t TlabMaxBytes = 0;
  std::unique_ptr<Collector> TheCollector;
  /// Non-null only for MarkSweep with VmConfig::Gc.Incremental: TheCollector
  /// downcast once, like TlabHeap.
  MarkSweepCollector *IncCollector = nullptr;
  /// Mirror of "pacing configured" for the allocation fast path.
  bool IncPacing = false;
  /// Countdown reload value (GcConfig::IncrementalSliceAllocs, min 1).
  uint32_t IncPaceAllocs = 0;
  /// GcConfig::IncrementalTriggerOccupancy, cached.
  double IncTrigger = 0.0;
  /// Mirror of IncCollector->incrementalActive(), readable without the
  /// stop-the-world window (the collector's own state is only touched
  /// inside one). Relaxed: the pace poll re-checks under the window.
  std::atomic<bool> IncCycleRunning{false};
  std::unique_ptr<HeapHardening> Hard;
  std::function<void()> PostGcCallback;
  /// Guards every access to Threads: spawning threads races with the
  /// collection-side walks because the spawner is not yet a registered
  /// mutator (stopping the world does not park it). Leaf lock — never
  /// allocate or wait on a safepoint while holding it.
  std::mutex ThreadsMutex;
  std::vector<std::unique_ptr<MutatorThread>> Threads;
  /// Threads.front(), cached so mainThread() does not touch the vector
  /// (whose slots move when a concurrent spawnThread reallocates it).
  MutatorThread *Main = nullptr;
  std::vector<ObjRef> GlobalRoots;
  std::vector<GlobalRootId> FreeGlobalSlots;
  bool HasAllocListener = false;
  std::function<void(ObjRef)> AllocListener;

  OomPolicy OnOom;
  struct OomHandler {
    OomHandlerId Id;
    std::function<bool(uint64_t)> Fn;
  };
  std::vector<OomHandler> OomHandlers;
  OomHandlerId NextOomHandlerId = 1;
  bool InOomHandlers = false;
  uint64_t OomNullReturns = 0;

  /// Declared last: destroyed first, so the crash-dump callback (which
  /// reads the members above) can never run against a dead VM.
  std::optional<ScopedCrashDumpProvider> CrashDump;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_VM_H
