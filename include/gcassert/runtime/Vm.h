//===- gcassert/runtime/Vm.h - Virtual machine facade -----------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vm wires a heap, a collector, the type registry and the mutator threads
/// into one runtime — the role Jikes RVM plays for the paper. Programs (the
/// workloads, examples and tests) allocate through Vm::allocate, which runs
/// a collection on exhaustion and retries.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_RUNTIME_VM_H
#define GCASSERT_RUNTIME_VM_H

#include "gcassert/gc/Collector.h"
#include "gcassert/heap/Heap.h"
#include "gcassert/runtime/MutatorThread.h"
#include "gcassert/support/Compiler.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"

#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace gcassert {

/// Which collector/heap pair the VM runs.
enum class CollectorKind : uint8_t {
  /// Full-heap mark-sweep over the segregated free-list heap (the paper's
  /// evaluated configuration).
  MarkSweep,
  /// Copying collector over a two-space heap (collector-independence
  /// demonstration).
  SemiSpace,
  /// Mark-compact collector: checking trace, then sliding compaction of
  /// the single contiguous space (a third collector mechanic for §2.2).
  MarkCompact,
  /// Two-generation collector: nursery evacuation on allocation pressure,
  /// full checking mark-sweep on explicit collections or old-gen pressure.
  /// Assertions are checked only at the major collections (§2.2). At most
  /// one generational VM may be live per process (it owns the store
  /// barrier).
  Generational,
};

/// What Vm::allocate does when the emergency cascade (collection, emergency
/// full collection, OOM handlers) cannot free enough memory.
enum class OomPolicy : uint8_t {
  /// Abort the process with crash diagnostics (the historical behavior and
  /// the default — library code stays exception-free).
  Abort,
  /// Return null from Vm::allocate; the caller sheds load.
  ReturnNull,
  /// Run the registered OOM handlers (each may free memory and request a
  /// retry); if none succeeds, return null.
  RunOomHandlers,
};

/// VM construction parameters.
struct VmConfig {
  size_t HeapBytes = 64u << 20;
  CollectorKind Collector = CollectorKind::MarkSweep;
  /// GC tuning (worker-thread count, ...), forwarded to the collector.
  GcConfig Gc;
  /// Out-of-memory policy; see OomPolicy (changeable later with
  /// Vm::setOomPolicy).
  OomPolicy OnOom = OomPolicy::Abort;
};

/// A stable global root slot, releasable by id.
using GlobalRootId = uint32_t;

/// The virtual machine: heap + collector + threads + roots.
class Vm : public RootProvider {
public:
  explicit Vm(const VmConfig &Config = VmConfig());
  ~Vm() override;

  TypeRegistry &types() { return Types; }
  Heap &heap() { return *TheHeap; }
  Collector &collector() { return *TheCollector; }
  CollectorKind collectorKind() const { return Kind; }

  /// \name Threads
  /// @{
  MutatorThread &mainThread() { return *Threads.front(); }

  /// Creates a new logical mutator thread owned by the VM.
  MutatorThread &spawnThread(const std::string &Name);

  /// Calls \p Fn for every thread.
  void forEachThread(const std::function<void(MutatorThread &)> &Fn);
  /// @}

  /// \name Allocation
  /// @{

  /// Allocates an object of \p Id on behalf of \p Thread, collecting and
  /// retrying on exhaustion through the emergency cascade (collection →
  /// emergency full collection → OOM handlers, per the configured
  /// OomPolicy). Returns null only under OomPolicy::ReturnNull /
  /// RunOomHandlers once the cascade is exhausted; under OomPolicy::Abort
  /// (the default) the process aborts with crash diagnostics instead.
  /// Array types require \p ArrayLength.
  ObjRef allocate(MutatorThread &Thread, TypeId Id, uint64_t ArrayLength = 0) {
    ObjRef Obj = TheHeap->allocate(Id, ArrayLength);
    if (GCA_UNLIKELY(!Obj))
      Obj = allocateSlowPath(Id, ArrayLength);
    // "corrupt.header" / "corrupt.ref" simulate the memory errors the
    // hardened heap exists to catch: a flipped header bit and a scribbled
    // reference slot. Out of line — the disarmed cost is the two relaxed
    // loads in shouldFail().
    if (GCA_UNLIKELY(faults::CorruptHeader.shouldFail()) && Obj)
      injectHeaderCorruption(Obj);
    if (GCA_UNLIKELY(faults::CorruptRef.shouldFail()) && Obj)
      injectRefCorruption(Obj);
    if (GCA_UNLIKELY(Thread.regionLog() != nullptr))
      Thread.regionLog()->push_back(Obj);
    if (GCA_UNLIKELY(HasAllocListener))
      AllocListener(Obj);
    return Obj;
  }

  /// Installs an observer for every successful allocation (used by the
  /// heuristic leak detectors; null to remove).
  void setAllocationListener(std::function<void(ObjRef)> Listener);
  /// @}

  /// Runs a collection immediately.
  void collectNow(const char *Cause = "explicit");

  /// \name Out-of-memory handling
  /// @{

  void setOomPolicy(OomPolicy Policy) { OnOom = Policy; }
  OomPolicy oomPolicy() const { return OnOom; }

  /// Registers an OOM handler for OomPolicy::RunOomHandlers. When the
  /// emergency cascade fails, handlers run in registration order with the
  /// needed byte count; a handler returns true if it released memory
  /// (dropped caches, cleared a global root, ...), which triggers another
  /// collection and retry before the next handler is consulted. Handlers
  /// must not allocate from this VM. Returns an id for removeOomHandler.
  using OomHandlerId = uint32_t;
  OomHandlerId addOomHandler(std::function<bool(uint64_t NeededBytes)> Fn);
  void removeOomHandler(OomHandlerId Id);

  /// How many allocations returned null to the mutator after the cascade
  /// (OomPolicy::ReturnNull, or RunOomHandlers with no handler helping).
  uint64_t oomNullReturns() const { return OomNullReturns; }
  /// @}

  /// \name Global roots
  /// @{
  GlobalRootId addGlobalRoot(ObjRef Obj = nullptr);
  void removeGlobalRoot(GlobalRootId Id);
  ObjRef globalRoot(GlobalRootId Id) const { return GlobalRoots[Id]; }
  void setGlobalRoot(GlobalRootId Id, ObjRef Obj) { GlobalRoots[Id] = Obj; }
  /// @}

  /// RootProvider: globals plus every thread's handles.
  void forEachRootSlot(const std::function<void(ObjRef *)> &Fn) override;

  const GcStats &gcStats() const { return TheCollector->stats(); }

  /// The hardened-heap subsystem, or null when VmConfig::Gc.Hardening is
  /// Off.
  HeapHardening *hardening() const { return Hard.get(); }

  /// Installs a callback run after every completed collection, whatever
  /// triggered it (explicit, allocation pressure, emergency cascade).
  /// The harness's --verify-heap hangs a full HeapVerifier pass here.
  void setPostGcCallback(std::function<void()> Fn) {
    PostGcCallback = std::move(Fn);
  }

private:
  GCA_NOINLINE ObjRef allocateSlowPath(TypeId Id, uint64_t ArrayLength);
  GCA_NOINLINE ObjRef handleAllocationExhausted(TypeId Id,
                                                uint64_t ArrayLength);
  GCA_NOINLINE void injectHeaderCorruption(ObjRef Obj);
  GCA_NOINLINE void injectRefCorruption(ObjRef Obj);
  /// All collections funnel through here so PostGcCallback fires on every
  /// completed cycle.
  void runCollectorCycle(const char *Cause);
  void notifyMemoryPressure(MemoryPressure Pressure);
  void dumpCrashDiagnostics();

  TypeRegistry Types;
  CollectorKind Kind;
  std::unique_ptr<Heap> TheHeap;
  std::unique_ptr<Collector> TheCollector;
  std::unique_ptr<HeapHardening> Hard;
  std::function<void()> PostGcCallback;
  std::vector<std::unique_ptr<MutatorThread>> Threads;
  std::vector<ObjRef> GlobalRoots;
  std::vector<GlobalRootId> FreeGlobalSlots;
  bool HasAllocListener = false;
  std::function<void(ObjRef)> AllocListener;

  OomPolicy OnOom;
  struct OomHandler {
    OomHandlerId Id;
    std::function<bool(uint64_t)> Fn;
  };
  std::vector<OomHandler> OomHandlers;
  OomHandlerId NextOomHandlerId = 1;
  bool InOomHandlers = false;
  uint64_t OomNullReturns = 0;

  /// Declared last: destroyed first, so the crash-dump callback (which
  /// reads the members above) can never run against a dead VM.
  std::optional<ScopedCrashDumpProvider> CrashDump;
};

} // namespace gcassert

#endif // GCASSERT_RUNTIME_VM_H
