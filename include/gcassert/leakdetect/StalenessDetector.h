//===- gcassert/leakdetect/StalenessDetector.h - Staleness -----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A staleness-based leak detector in the style of SWAT (Chilimbi &
/// Hauswirth, ASPLOS 2004) and Bell (Bond & McKinley, ASPLOS 2006) — the
/// heuristic tools the paper contrasts with GC assertions (§1, §4): "objects
/// that have not been accessed in a long time are probably memory leaks".
///
/// The detector keeps a logical clock (advanced by the program at meaningful
/// steps), records each object's allocation tick, and is told about accesses
/// via touch() — standing in for SWAT's sampled read barriers. A scan then
/// reports live objects whose last access is older than a threshold.
///
/// This is a *baseline* for the BASE-LEAK bench: unlike GC assertions it
/// reports suspicions, not errors — it has false positives (rarely-read but
/// needed data) and detection latency (a leak must age before it is
/// flagged). Supports the non-moving heap only.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_LEAKDETECT_STALENESSDETECTOR_H
#define GCASSERT_LEAKDETECT_STALENESSDETECTOR_H

#include "gcassert/runtime/Vm.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace gcassert {

/// A live object whose last access is older than the scan threshold.
struct StaleCandidate {
  ObjRef Obj;
  std::string TypeName;
  /// Ticks since the object was last touched (or allocated).
  uint64_t Age;
};

/// Staleness-based heuristic leak detector (SWAT/Bell-style baseline).
class StalenessDetector {
public:
  /// Attaches to \p TheVm's allocation path. Requires the mark-sweep
  /// (non-moving) collector.
  explicit StalenessDetector(Vm &TheVm);
  ~StalenessDetector();

  StalenessDetector(const StalenessDetector &) = delete;
  StalenessDetector &operator=(const StalenessDetector &) = delete;

  /// Advances the logical clock by one tick.
  void tick() { ++Clock; }

  uint64_t now() const { return Clock; }

  /// Records an access to \p Obj (the read-barrier stand-in).
  void touch(ObjRef Obj) { LastAccess[Obj] = Clock; }

  /// Scans the heap and returns every live object not touched for at least
  /// \p StaleAge ticks. Also prunes bookkeeping for objects that died.
  /// Call after a collection so the walk sees only live objects.
  std::vector<StaleCandidate> scan(uint64_t StaleAge);

private:
  Vm &TheVm;
  uint64_t Clock = 0;
  std::unordered_map<ObjRef, uint64_t> LastAccess;
};

} // namespace gcassert

#endif // GCASSERT_LEAKDETECT_STALENESSDETECTOR_H
