//===- gcassert/leakdetect/TypeGrowthDetector.h - Heap diffing -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A heap-differencing leak detector in the style of Cork (Jump & McKinley,
/// POPL 2007), the tool the paper compares its reporting against (§2.7) and
/// whose SPEC JBB2000 leak finding the paper re-investigates (§3.2.1).
///
/// After each collection the detector snapshots live bytes per type; types
/// whose volume grows across many consecutive snapshots are reported as
/// probable leaks. Like Cork, it reports *types*, not instances — the
/// precision gap GC assertions close.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_LEAKDETECT_TYPEGROWTHDETECTOR_H
#define GCASSERT_LEAKDETECT_TYPEGROWTHDETECTOR_H

#include "gcassert/runtime/Vm.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace gcassert {

/// A type whose live volume has grown monotonically.
struct GrowthCandidate {
  std::string TypeName;
  uint64_t CurrentBytes;
  /// Number of consecutive snapshots with growth.
  size_t ConsecutiveGrowth;
};

/// Cork-style type-volume growth detector.
class TypeGrowthDetector {
public:
  explicit TypeGrowthDetector(Vm &TheVm) : TheVm(TheVm) {}

  /// Records live bytes per type. Call right after a collection.
  void snapshot();

  /// Types whose live volume grew in at least \p MinConsecutive consecutive
  /// snapshots (requires at least MinConsecutive + 1 snapshots of history).
  std::vector<GrowthCandidate> report(size_t MinConsecutive) const;

  size_t snapshotCount() const { return Snapshots; }

private:
  struct TypeHistory {
    uint64_t LastBytes = 0;
    size_t ConsecutiveGrowth = 0;
  };

  Vm &TheVm;
  std::unordered_map<TypeId, TypeHistory> History;
  size_t Snapshots = 0;
};

} // namespace gcassert

#endif // GCASSERT_LEAKDETECT_TYPEGROWTHDETECTOR_H
