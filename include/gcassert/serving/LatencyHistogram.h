//===- gcassert/serving/LatencyHistogram.h - Tail-latency recorder -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-bucket log-linear latency histogram (DESIGN.md §14), the
/// recorder behind the serving suite's p50/p95/p99/p99.9 numbers.
///
/// The request path must be allocation-free and lock-free: each serving
/// thread records into its own histogram (record() is a handful of integer
/// ops and array increments into storage owned by the histogram itself),
/// and the harness merges the per-thread histograms after the run.
///
/// Bucketing is HDR-style log-linear over nanosecond values:
///   * values below 64 ns land in exact unit buckets [0, 64), so tiny
///     distributions (and unit tests) see exact percentiles;
///   * every octave [2^e, 2^(e+1)) above that is split into 32 linear
///     sub-buckets, bounding the relative quantization error at 1/32
///     (~3.1%) while keeping the whole table at 1,920 fixed buckets.
///
/// Percentiles report the *upper* bound of the bucket holding the target
/// rank — conservative for an SLO check (never under-reports a tail) — and
/// are clamped to the exactly-tracked min/max.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SERVING_LATENCYHISTOGRAM_H
#define GCASSERT_SERVING_LATENCYHISTOGRAM_H

#include <cstddef>
#include <cstdint>

namespace gcassert {
namespace serving {

/// Allocation-free log-linear histogram of nanosecond latencies.
class LatencyHistogram {
public:
  /// Exact unit buckets cover [0, LinearMax); 64 = 2^LinearShift.
  static constexpr uint64_t LinearShift = 6;
  static constexpr uint64_t LinearMax = 1u << LinearShift;
  /// Linear sub-buckets per octave above LinearMax.
  static constexpr uint64_t SubBucketShift = 5;
  static constexpr uint64_t SubBuckets = 1u << SubBucketShift;
  /// Octaves [2^6, 2^63] each contribute SubBuckets buckets.
  static constexpr size_t NumBuckets =
      LinearMax + (64 - LinearShift) * SubBuckets;

  LatencyHistogram() = default;

  /// Maps \p Nanos to its bucket index. Exact below LinearMax; log-linear
  /// above.
  static size_t bucketFor(uint64_t Nanos) {
    if (Nanos < LinearMax)
      return static_cast<size_t>(Nanos);
    // Exponent of the value's octave: 63 - clz. Nanos >= 64 here, so the
    // builtin's undefined-at-zero case cannot arise.
    uint64_t Exp = 63 - static_cast<uint64_t>(__builtin_clzll(Nanos));
    uint64_t Sub = (Nanos >> (Exp - SubBucketShift)) - SubBuckets;
    return static_cast<size_t>(LinearMax +
                               (Exp - LinearShift) * SubBuckets + Sub);
  }

  /// The largest value mapping to \p Bucket (what percentiles report).
  static uint64_t bucketUpperBound(size_t Bucket) {
    if (Bucket < LinearMax)
      return Bucket;
    uint64_t Exp = LinearShift + (Bucket - LinearMax) / SubBuckets;
    uint64_t Sub = (Bucket - LinearMax) % SubBuckets;
    uint64_t Width = uint64_t(1) << (Exp - SubBucketShift);
    return (uint64_t(1) << Exp) + (Sub + 1) * Width - 1;
  }

  /// Records one latency sample. No locks, no allocation.
  void record(uint64_t Nanos) {
    ++Counts[bucketFor(Nanos)];
    ++Total;
    Sum += Nanos;
    if (Nanos < MinValue)
      MinValue = Nanos;
    if (Nanos > MaxValue)
      MaxValue = Nanos;
  }

  /// Adds every sample of \p Other into this histogram (per-thread merge).
  void merge(const LatencyHistogram &Other) {
    for (size_t I = 0; I != NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
    Total += Other.Total;
    Sum += Other.Sum;
    if (Other.Total) {
      if (Other.MinValue < MinValue)
        MinValue = Other.MinValue;
      if (Other.MaxValue > MaxValue)
        MaxValue = Other.MaxValue;
    }
  }

  uint64_t count() const { return Total; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Total ? MinValue : 0; }
  uint64_t max() const { return Total ? MaxValue : 0; }
  double mean() const {
    return Total ? static_cast<double>(Sum) / static_cast<double>(Total) : 0.0;
  }

  /// The value at \p Percentile (0 < Percentile <= 100): the upper bound of
  /// the bucket containing the ceil(P/100 * N)-th smallest sample, clamped
  /// to the exact min/max. Returns 0 on an empty histogram.
  uint64_t valueAtPercentile(double Percentile) const {
    if (!Total)
      return 0;
    // ceil(P/100 * N), tolerant of the representation error of decimal
    // percentiles (99.9 * 1000 / 100 computes to 999.0000000000001, whose
    // plain ceil would skip to rank 1000). A real fractional part is at
    // least 1/1000 for the percentiles anyone asks for, so the 1e-6 cut
    // separates it from rounding noise at every feasible sample count.
    double Exact = Percentile * static_cast<double>(Total) / 100.0;
    uint64_t Rank = static_cast<uint64_t>(Exact);
    if (Exact - static_cast<double>(Rank) > 1e-6)
      ++Rank;
    if (Rank < 1)
      Rank = 1;
    if (Rank >= Total)
      return MaxValue;
    uint64_t Seen = 0;
    for (size_t I = 0; I != NumBuckets; ++I) {
      Seen += Counts[I];
      if (Seen >= Rank) {
        uint64_t Upper = bucketUpperBound(I);
        if (Upper < MinValue)
          return MinValue;
        return Upper < MaxValue ? Upper : MaxValue;
      }
    }
    return MaxValue;
  }

  void reset() {
    for (uint64_t &C : Counts)
      C = 0;
    Total = 0;
    Sum = 0;
    MinValue = ~uint64_t(0);
    MaxValue = 0;
  }

private:
  uint64_t Counts[NumBuckets] = {};
  uint64_t Total = 0;
  uint64_t Sum = 0;
  uint64_t MinValue = ~uint64_t(0);
  uint64_t MaxValue = 0;
};

} // namespace serving
} // namespace gcassert

#endif // GCASSERT_SERVING_LATENCYHISTOGRAM_H
