//===- gcassert/serving/KvService.h - Managed KV serving workload -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A masstree-style key/value service over the managed B+ tree, shaped as a
/// request workload for the latency-SLO suite (DESIGN.md §14): sharded
/// trees, a FIFO eviction policy with a fixed live cap, and GC assertions
/// woven into the request path — assertDead on every evicted or erased
/// value, assertUnshared on values read back (the tree's entry array holds
/// their only edge), and a per-request allocation region for the response
/// scratch.
///
/// Determinism across collectors AND thread counts: request \p Index is
/// routed to shard Index % Shards, and the harness routes request Index to
/// worker thread Index % Threads with Threads dividing Shards — so each
/// shard is touched by exactly one thread, and that thread visits its
/// requests in increasing Index order. The per-request RNG is derived from
/// (Seed, Index) alone. The final tree contents (and so digest()) are
/// therefore identical for every collector and every dividing thread count.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SERVING_KVSERVICE_H
#define GCASSERT_SERVING_KVSERVICE_H

#include "gcassert/workloads/BTree.h"
#include "gcassert/workloads/Workload.h"

#include <deque>
#include <memory>
#include <mutex>

namespace gcassert {
namespace serving {

/// KV service shape. Shards must stay a multiple of every worker-thread
/// count the harness runs (the suite uses 1 and 4).
struct KvConfig {
  uint32_t Shards = 8;
  /// FIFO eviction keeps at most this many entries live per shard.
  uint32_t LiveCapPerShard = 256;
  /// Key space per shard; keys collide (overwrites) well before eviction.
  uint32_t KeysPerShard = 2048;
  /// Payload bytes per value (>= 8; the first 8 carry the writer's stamp).
  uint32_t ValueBytes = 512;
  /// Max pairs visited per scan request.
  uint32_t ScanLimit = 32;
};

/// Cumulative request counters (summed over shards).
struct KvStats {
  uint64_t Gets = 0;
  uint64_t GetHits = 0;
  uint64_t Puts = 0;
  uint64_t Overwrites = 0;
  uint64_t Scans = 0;
  uint64_t ScannedPairs = 0;
  uint64_t Erases = 0;
  uint64_t Evictions = 0;
  uint64_t LeakedEvictions = 0; ///< "kv.evict.leak" fired: erase skipped.
};

/// The service. Construct (and prefill) on the main thread before any
/// worker starts; execute() is then safe from concurrent mutator threads.
class KvService {
public:
  KvService(WorkloadContext &Ctx, const KvConfig &Config, uint64_t Seed);
  ~KvService();

  KvService(const KvService &) = delete;
  KvService &operator=(const KvService &) = delete;

  const KvConfig &config() const { return Cfg; }

  /// Runs request \p Index on \p T (which must be \p T's own registered
  /// mutator context). Allocates through Vm::allocate only, so every
  /// blocking point is a safepoint poll site.
  void execute(WorkloadContext &Ctx, MutatorThread &T, uint64_t Index);

  /// Deterministic digest of the final KV state (key + value stamp of
  /// every live pair, shards in order, keys ascending). Call after the
  /// workers joined.
  uint64_t digest() const;

  /// Total live pairs across shards.
  uint64_t liveEntries() const;

  KvStats stats() const;

private:
  struct Shard {
    std::mutex Mutex;
    std::unique_ptr<ManagedBTree> Tree;
    /// Insertion-order queue of keys for FIFO eviction. May hold stale
    /// keys (erased by a request before their eviction turn); eviction
    /// skips those.
    std::deque<int64_t> Fifo;
    KvStats Stats;
  };

  /// Acquires \p S.Mutex without ever stalling a stop-the-world pause: a
  /// failed try_lock waits inside a SafepointSafeScope, so a blocked
  /// waiter counts as stopped while the lock holder (which may be parked
  /// at an allocation poll mid-request) finishes.
  static void lockShard(Vm &V, Shard &S);

  /// Evicts FIFO-oldest entries until \p S is back under the live cap.
  /// Caller holds the shard lock. Never allocates.
  void evictOverCap(WorkloadContext &Ctx, Shard &S);

  KvConfig Cfg;
  uint64_t Seed;
  TypeId ValueType;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace serving
} // namespace gcassert

#endif // GCASSERT_SERVING_KVSERVICE_H
