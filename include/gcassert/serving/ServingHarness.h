//===- gcassert/serving/ServingHarness.h - Latency-SLO harness --*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the serving workloads (KvService, OltpService) with real OS
/// mutator threads through the safepoint protocol, under an open-loop
/// (Poisson arrivals at a fixed offered rate, so queueing behind GC pauses
/// is visible in the tail) or closed-loop load generator, and records
/// request latencies into an allocation-free histogram (DESIGN.md §14).
///
/// Request routing: request Index runs on worker Index % Threads, and both
/// services route Index to partition Index % Partitions — with Threads
/// dividing the partition count, each partition has a single owning thread,
/// which makes the final service state identical across collectors and
/// across every dividing thread count (the determinism the workload tests
/// pin down).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SERVING_SERVINGHARNESS_H
#define GCASSERT_SERVING_SERVINGHARNESS_H

#include "gcassert/serving/KvService.h"
#include "gcassert/serving/LatencyHistogram.h"
#include "gcassert/serving/LoadGenerator.h"
#include "gcassert/serving/OltpService.h"
#include "gcassert/workloads/Harness.h"

namespace gcassert {
namespace serving {

/// Which request workload to serve.
enum class ServingWorkload : uint8_t { Kv, Oltp };

const char *servingWorkloadName(ServingWorkload Workload);

/// Knobs for one serving run.
struct ServingOptions {
  ServingWorkload Workload = ServingWorkload::Kv;
  CollectorKind Collector = CollectorKind::MarkSweep;
  unsigned GcThreads = 1;
  /// Worker mutator threads. Must divide the workload's partition count
  /// (KvConfig::Shards / OltpConfig::districts()).
  unsigned Threads = 1;
  LoopMode Loop = LoopMode::Open;
  /// Aggregate offered request rate across all threads (open loop only).
  double OfferedRatePerSec = 2000.0;
  /// Total requests across all threads.
  uint64_t Requests = 2000;
  uint64_t Seed = 0x5eed;
  BenchConfig Config = BenchConfig::WithAssertions;
  /// Heap size; 0 means the suite default (4 MiB — small enough that the
  /// per-request garbage forces regular collections under load).
  size_t HeapBytes = 0;
  /// When set, violations are recorded here; otherwise the harness counts
  /// them in an internal recording sink (they are never printed).
  RecordingViolationSink *Sink = nullptr;
  KvConfig Kv;
  OltpConfig Oltp;
};

/// What one serving run produced.
struct ServingResult {
  /// Merged request-latency histogram (open loop: measured from each
  /// request's scheduled arrival, so queueing delay counts; closed loop:
  /// service time only).
  LatencyHistogram Latency;
  uint64_t Requests = 0;
  /// Requests whose execution overlapped at least one stop-the-world
  /// pause (safepoint epoch advanced while they ran) — the pause/outlier
  /// correlation counter.
  uint64_t RequestsOverlappingPause = 0;
  double ElapsedMillis = 0;
  double AchievedRatePerSec = 0;
  double OfferedRatePerSec = 0;
  uint64_t GcCycles = 0;
  /// Service state digest after the run (collector- and thread-count
  /// independent for a fixed seed and request count).
  uint64_t StateDigest = 0;
  /// Live entries / open orders at the end.
  uint64_t LiveEntries = 0;
  uint64_t Violations = 0;
  EngineCounters Counters;
};

/// Builds a VM, runs \p Options.Requests requests of the selected workload
/// under the selected loop mode, runs a final collection (which executes
/// any still-pending GC assertions), and returns the merged result.
ServingResult runServing(const ServingOptions &Options);

} // namespace serving
} // namespace gcassert

#endif // GCASSERT_SERVING_SERVINGHARNESS_H
