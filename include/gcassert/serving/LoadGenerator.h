//===- gcassert/serving/LoadGenerator.h - Open/closed-loop load -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrival-time generation for the latency-SLO serving harness
/// (DESIGN.md §14).
///
/// Open-loop mode draws Poisson arrivals at a fixed offered rate: the
/// schedule is independent of service times, so when the server falls
/// behind, later requests queue and their measured latency includes the
/// queueing delay — the behavior that makes GC pauses visible as p99/p99.9
/// spikes. Closed-loop mode issues the next request as soon as the previous
/// one completes (think back-to-back RPC client), which measures service
/// time but hides queueing (coordinated omission).
///
/// Schedules are precomputed per serving thread from a pinned SplitMix64
/// stream, so the arrival pattern for (seed, thread, rate, count) is
/// bit-identical across runs, collectors, and hosts.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SERVING_LOADGENERATOR_H
#define GCASSERT_SERVING_LOADGENERATOR_H

#include "gcassert/support/Random.h"

#include <cstdint>
#include <vector>

namespace gcassert {
namespace serving {

/// How request issue times are chosen.
enum class LoopMode : uint8_t {
  /// Poisson arrivals at a fixed offered rate; latency is measured from the
  /// scheduled arrival, so queueing delay counts.
  Open,
  /// Next request issues when the previous completes; latency is pure
  /// service time.
  Closed,
};

const char *loopModeName(LoopMode Mode);

/// One thread's precomputed open-loop arrival schedule: nanosecond offsets
/// from the run's start time, strictly non-decreasing.
class ArrivalSchedule {
public:
  /// Draws \p Count exponential inter-arrival gaps at \p RatePerSec from a
  /// SplitMix64 stream seeded with \p Seed. RatePerSec must be positive.
  ArrivalSchedule(uint64_t Seed, double RatePerSec, uint64_t Count);

  uint64_t count() const { return Offsets.size(); }
  uint64_t offsetNanos(uint64_t I) const { return Offsets[I]; }

  /// The offered rate realized by this schedule: count / last offset. The
  /// law of large numbers pulls it toward the requested rate as the count
  /// grows; the unit tests pin the tolerance.
  double offeredRatePerSec() const;

private:
  std::vector<uint64_t> Offsets;
};

/// One exponential inter-arrival gap in nanoseconds at \p RatePerSec, drawn
/// from \p Rng. Exposed for the unit tests, which replay the pinned stream.
uint64_t exponentialGapNanos(SplitMix64 &Rng, double RatePerSec);

} // namespace serving
} // namespace gcassert

#endif // GCASSERT_SERVING_LOADGENERATOR_H
