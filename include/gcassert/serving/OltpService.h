//===- gcassert/serving/OltpService.h - Order-entry OLTP workload -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shore-style order-entry OLTP request workload mirroring PseudoJbb's
/// object shapes, reframed as a serving workload for the latency-SLO suite
/// (DESIGN.md §14). Each district is an order book (a managed B+ tree keyed
/// by order sequence number); a new-order request builds an Order object
/// with a line array and per-line item payloads, inserts it, and asserts it
/// owned by its district's tree (§2.5.2); request-scratch allocations run
/// inside an allocation region closed with assert-alldead; delivery removes
/// the oldest open orders and asserts each dead (§2.3.1).
///
/// Determinism follows the same routing contract as KvService: request
/// Index targets district Index % Districts, the harness routes Index to
/// worker Index % Threads with Threads dividing Districts, so each district
/// has a single owning thread that visits its requests in Index order, and
/// every request's content derives from (Seed, Index) alone.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SERVING_OLTPSERVICE_H
#define GCASSERT_SERVING_OLTPSERVICE_H

#include "gcassert/workloads/BTree.h"
#include "gcassert/workloads/Workload.h"

#include <memory>
#include <mutex>

namespace gcassert {
namespace serving {

/// Order-entry shape. Warehouses * DistrictsPerWarehouse must stay a
/// multiple of every worker-thread count the harness runs.
struct OltpConfig {
  uint32_t Warehouses = 2;
  uint32_t DistrictsPerWarehouse = 4;
  /// Auto-delivery keeps at most this many open orders per district.
  uint32_t MaxOpenOrders = 64;
  /// New-order requests carry 1..MaxItemsPerOrder lines.
  uint32_t MaxItemsPerOrder = 8;
  /// Payload bytes per order line item.
  uint32_t ItemBytes = 64;

  uint32_t districts() const { return Warehouses * DistrictsPerWarehouse; }
};

/// Cumulative request counters (summed over districts).
struct OltpStats {
  uint64_t NewOrders = 0;
  uint64_t OrderLines = 0;
  uint64_t StatusChecks = 0;
  uint64_t StatusOrdersRead = 0;
  uint64_t Deliveries = 0;
  uint64_t OrdersDelivered = 0;
};

/// The service. Construct on the main thread before any worker starts;
/// execute() is then safe from concurrent mutator threads.
class OltpService {
public:
  OltpService(WorkloadContext &Ctx, const OltpConfig &Config, uint64_t Seed);
  ~OltpService();

  OltpService(const OltpService &) = delete;
  OltpService &operator=(const OltpService &) = delete;

  const OltpConfig &config() const { return Cfg; }

  /// Runs request \p Index on \p T.
  void execute(WorkloadContext &Ctx, MutatorThread &T, uint64_t Index);

  /// Deterministic digest of the final order books (districts in order,
  /// orders by ascending sequence; mixes seq, amount and line count).
  uint64_t digest() const;

  /// Total open orders across districts.
  uint64_t openOrders() const;

  OltpStats stats() const;

private:
  struct District {
    std::mutex Mutex;
    std::unique_ptr<ManagedBTree> Orders;
    int64_t NextSeq = 0;
    OltpStats Stats;
  };

  static void lockDistrict(Vm &V, District &D);

  /// Builds one order (line array + item payloads + Order object) from
  /// \p Rng and commits it to \p D: assigns the next sequence number,
  /// inserts, asserts the order owned by the district's tree, and
  /// auto-delivers down to MaxOpenOrders. \p TakeLock is false only during
  /// prefill, before any worker exists.
  void newOrder(WorkloadContext &Ctx, MutatorThread &T, District &D,
                SplitMix64 &Rng, bool TakeLock);

  /// Delivers (erases + assertDead, §2.3.1) the oldest orders while \p D
  /// holds more than \p FloorSize of them, up to \p MaxBatch. Caller holds
  /// the district lock. Never allocates.
  void deliverOldest(WorkloadContext &Ctx, District &D, uint32_t MaxBatch,
                     uint64_t FloorSize);

  OltpConfig Cfg;
  uint64_t Seed;
  TypeId OrderType;
  TypeId LineArrayType;
  TypeId ItemType;
  TypeId ScratchType;
  uint32_t OrderLinesField;
  uint32_t OrderSeqField;
  uint32_t OrderAmountField;
  std::vector<std::unique_ptr<District>> Districts;
};

} // namespace serving
} // namespace gcassert

#endif // GCASSERT_SERVING_OLTPSERVICE_H
