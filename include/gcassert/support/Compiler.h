//===- gcassert/support/Compiler.h - Compiler abstraction macros -*- C++ -*-==//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portability and optimization-hint macros used throughout gcassert.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_COMPILER_H
#define GCASSERT_SUPPORT_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)
#define GCA_LIKELY(Expr) (__builtin_expect(!!(Expr), 1))
#define GCA_UNLIKELY(Expr) (__builtin_expect(!!(Expr), 0))
#define GCA_NOINLINE __attribute__((noinline))
#define GCA_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define GCA_LIKELY(Expr) (Expr)
#define GCA_UNLIKELY(Expr) (Expr)
#define GCA_NOINLINE
#define GCA_ALWAYS_INLINE inline
#endif

#endif // GCASSERT_SUPPORT_COMPILER_H
