//===- gcassert/support/Stats.h - Sample statistics -------------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sample statistics for the benchmark harness: mean, standard deviation,
/// geometric mean, and Student-t 90% confidence intervals.
///
/// The paper's methodology reports each benchmark as the mean of 20 trials
/// with 90% confidence error bars and aggregates across benchmarks with the
/// geometric mean; this module supplies exactly those reductions.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_STATS_H
#define GCASSERT_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace gcassert {

/// Accumulates scalar samples and computes summary statistics.
class SampleSet {
public:
  void add(double Value) { Values.push_back(Value); }

  size_t size() const { return Values.size(); }
  bool empty() const { return Values.empty(); }
  const std::vector<double> &values() const { return Values; }

  /// Arithmetic mean. Requires at least one sample.
  double mean() const;

  /// Minimum sample. Requires at least one sample.
  double min() const;

  /// Maximum sample. Requires at least one sample.
  double max() const;

  /// Unbiased (n-1) sample standard deviation. Returns 0 for n < 2.
  double stddev() const;

  /// Half-width of the two-sided 90% confidence interval of the mean,
  /// using the Student-t distribution. Returns 0 for n < 2.
  double confidence90() const;

private:
  std::vector<double> Values;
};

/// Geometric mean of \p Values. All values must be positive.
double geometricMean(const std::vector<double> &Values);

/// Two-sided Student-t critical value at 90% confidence for \p DegreesFreedom
/// degrees of freedom (i.e. the 0.95 quantile). Interpolates a fixed table;
/// exact for the small trial counts the harness uses.
double studentT90(size_t DegreesFreedom);

} // namespace gcassert

#endif // GCASSERT_SUPPORT_STATS_H
