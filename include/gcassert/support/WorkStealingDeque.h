//===- gcassert/support/WorkStealingDeque.h - Chase-Lev deque ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chase-Lev work-stealing deque of uintptr_t entries, the per-worker
/// worklist of the parallel mark phase. The owning worker pushes and pops at
/// the bottom (LIFO, cache-friendly depth-first tracing); idle workers steal
/// from the top (FIFO, taking the oldest — and usually widest — subtrees).
///
/// Memory ordering follows the C11 formulation of Lê, Pop, Cohen &
/// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
/// Models" (PPoPP'13). The buffer grows by doubling; retired buffers are
/// kept alive until reset() because a concurrent thief may still hold a
/// pointer into one mid-steal.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_WORKSTEALINGDEQUE_H
#define GCASSERT_SUPPORT_WORKSTEALINGDEQUE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace gcassert {

/// Single-owner, multi-thief lock-free deque. push/pop/reset are owner-only;
/// steal and empty may be called from any thread.
class WorkStealingDeque {
public:
  explicit WorkStealingDeque(size_t InitialCapacity = 1u << 12) {
    Buffers.push_back(std::make_unique<Buffer>(roundUp(InitialCapacity)));
    Buf.store(Buffers.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  /// Owner: pushes \p Value at the bottom.
  void push(uintptr_t Value) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t T = Top.load(std::memory_order_acquire);
    Buffer *A = Buf.load(std::memory_order_relaxed);
    if (B - T > A->Capacity - 1)
      A = grow(A, T, B);
    A->at(B).store(Value, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
  }

  /// Owner: pops the most recently pushed entry. Returns false when empty.
  bool pop(uintptr_t &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Buffer *A = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t T = Top.load(std::memory_order_relaxed);
    if (T > B) {
      // Deque was already empty; restore the canonical empty state.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    Out = A->at(B).load(std::memory_order_relaxed);
    if (T == B) {
      // Last entry: race against thieves for it.
      bool Won = Top.compare_exchange_strong(
          T, T + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      Bottom.store(B + 1, std::memory_order_relaxed);
      return Won;
    }
    return true;
  }

  /// Thief: steals the oldest entry. Returns false when empty or when the
  /// steal raced with another thief (the caller just tries elsewhere).
  bool steal(uintptr_t &Out) {
    int64_t T = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (T >= B)
      return false;
    Buffer *A = Buf.load(std::memory_order_acquire);
    Out = A->at(T).load(std::memory_order_relaxed);
    return Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed);
  }

  /// Conservative emptiness check for termination detection: may report a
  /// transiently non-empty deque as non-empty, never hides present work.
  bool empty() const {
    int64_t T = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    return B <= T;
  }

  /// Owner (quiescent): frees buffers retired by growth, keeping the
  /// current one. Call between tracing cycles, never while thieves run.
  void reset() {
    if (Buffers.size() > 1) {
      std::unique_ptr<Buffer> Current = std::move(Buffers.back());
      Buffers.clear();
      Buffers.push_back(std::move(Current));
    }
  }

private:
  struct Buffer {
    explicit Buffer(int64_t Capacity)
        : Capacity(Capacity),
          Slots(std::make_unique<std::atomic<uintptr_t>[]>(
              static_cast<size_t>(Capacity))) {}

    std::atomic<uintptr_t> &at(int64_t Index) {
      return Slots[static_cast<size_t>(Index & (Capacity - 1))];
    }

    const int64_t Capacity; // Always a power of two.
    std::unique_ptr<std::atomic<uintptr_t>[]> Slots;
  };

  static size_t roundUp(size_t N) {
    size_t P = 16;
    while (P < N)
      P <<= 1;
    return P;
  }

  Buffer *grow(Buffer *Old, int64_t T, int64_t B) {
    Buffers.push_back(std::make_unique<Buffer>(Old->Capacity * 2));
    Buffer *New = Buffers.back().get();
    for (int64_t I = T; I != B; ++I)
      New->at(I).store(Old->at(I).load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    Buf.store(New, std::memory_order_release);
    return New;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Buffer *> Buf{nullptr};
  /// All buffers ever allocated, oldest first; the last is current. Retired
  /// ones stay mapped until reset() (thieves may still be reading them).
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_WORKSTEALINGDEQUE_H
