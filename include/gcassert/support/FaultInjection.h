//===- gcassert/support/FaultInjection.h - Deterministic failpoints -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the runtime's resource-failure paths.
///
/// A Failpoint is a named site compiled into the production binary. Disarmed
/// (the default) it costs one relaxed atomic load; armed it consults a
/// deterministic policy — fail always, fail once (after an optional number of
/// skipped hits), fail every Nth hit, or fail with a seeded probability via
/// support/Random — so stress tests can drive every recovery path
/// reproducibly from a fixed seed.
///
/// Sites self-register in a global registry at static-initialization time, so
/// tests and the GCASSERT_FAILPOINTS environment variable can arm them by
/// name without the site's translation unit exporting anything else.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_FAULTINJECTION_H
#define GCASSERT_SUPPORT_FAULTINJECTION_H

#include "gcassert/support/Compiler.h"
#include "gcassert/support/Random.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace gcassert {

/// One named fault-injection site.
///
/// shouldFail() is safe to call from any thread. Arming, disarming and
/// counter access take a per-failpoint mutex; the disarmed fast path is a
/// single relaxed atomic load and no fence, so sites may sit on moderately
/// hot paths (allocation slow paths, per-object copy loops) without
/// measurable cost — see bench/failpoint_overhead.cpp.
class Failpoint {
public:
  /// Registers the site under \p SiteName. The name must outlive the
  /// failpoint (sites use string literals).
  explicit Failpoint(const char *SiteName);
  ~Failpoint();

  Failpoint(const Failpoint &) = delete;
  Failpoint &operator=(const Failpoint &) = delete;

  const char *name() const { return SiteName; }

  /// Returns true when the site should simulate a failure this hit.
  /// The disarmed fast path is one relaxed load.
  bool shouldFail() {
    if (GCA_LIKELY(!Armed.load(std::memory_order_relaxed)))
      return false;
    return evaluateSlow();
  }

  /// \name Policies
  /// Arming replaces any previous policy and resets the policy's internal
  /// progress (but not the cumulative hit/fired counters).
  /// @{

  /// Fail on every hit.
  void armAlways();

  /// Fail exactly once, after skipping the first \p SkipHits armed hits.
  void armOnce(uint64_t SkipHits = 0);

  /// Fail on every \p N-th armed hit (the Nth, 2Nth, ...). \p N >= 1.
  void armEveryNth(uint64_t N);

  /// Fail each armed hit with probability \p Percent/100, drawn from a
  /// SplitMix64 stream seeded with \p Seed (deterministic per arming).
  void armProbabilityPercent(uint32_t Percent, uint64_t Seed);

  void disarm();
  bool armed() const { return Armed.load(std::memory_order_relaxed); }
  /// @}

  /// \name Counters
  /// Hits count shouldFail() evaluations while armed (the disarmed fast
  /// path does not count); Fired counts hits that returned true.
  /// @{
  uint64_t hitCount() const;
  uint64_t firedCount() const;
  void resetCounters();
  /// @}

private:
  enum class Policy : uint8_t { Disabled, Always, Once, EveryNth, Probability };

  GCA_NOINLINE bool evaluateSlow();

  const char *SiteName;
  std::atomic<bool> Armed{false};

  mutable std::mutex StateMutex;
  Policy ActivePolicy = Policy::Disabled;
  uint64_t SkipRemaining = 0; ///< Once: armed hits left before firing.
  bool OnceFired = false;     ///< Once: already delivered its failure.
  uint64_t Interval = 0;      ///< EveryNth: fire when PolicyHits % N == 0.
  uint64_t PolicyHits = 0;    ///< Hits since the current arming.
  uint32_t Percent = 0;       ///< Probability: chance per hit.
  SplitMix64 Rng{0};          ///< Probability: seeded per arming.
  uint64_t Hits = 0;
  uint64_t Fired = 0;

  friend void registerFailpoint(Failpoint &FP);
  friend void unregisterFailpoint(Failpoint &FP);
  friend Failpoint *findFailpoint(std::string_view Name);
  friend void forEachFailpoint(const std::function<void(Failpoint &)> &Fn);
  Failpoint *NextRegistered = nullptr;
};

/// \name Registry
/// @{

/// Returns the failpoint registered under \p Name, or null.
Failpoint *findFailpoint(std::string_view Name);

/// Calls \p Fn for every registered failpoint.
void forEachFailpoint(const std::function<void(Failpoint &)> &Fn);

/// Disarms every registered failpoint (test teardown).
void disarmAllFailpoints();

/// Arms failpoints from a spec string:
///
///   spec    ::= site '=' policy (',' site '=' policy)*
///   policy  ::= 'off' | 'always' | 'once' [':' skip]
///             | 'every' ':' n | 'prob' ':' percent [':' seed]
///
/// e.g. "heap.host_alloc=once,heap.block_acquire=prob:25:42". Unknown sites
/// or malformed policies stop parsing; already-parsed clauses stay armed.
/// Returns true on full success; on failure *Error (if non-null) describes
/// the first bad clause and enumerates the registered site names (for an
/// unknown site) or the policy grammar (for a malformed policy), so a typo
/// in a test matrix cannot silently disarm a fault campaign.
bool armFailpointsFromSpec(std::string_view Spec, std::string *Error = nullptr);

/// Arms failpoints from the GCASSERT_FAILPOINTS environment variable.
/// Returns the number of clauses applied (0 when unset or empty). A
/// malformed spec is fatal: a misspelled site or policy would otherwise
/// run the program with no faults armed while the harness believes it is
/// injecting — exactly the silent failure this variable exists to prevent.
size_t armFailpointsFromEnv();

/// Installs a callback invoked (under the failpoint's state mutex, so keep
/// it cheap) each time any armed site fires, with the site name. One
/// observer slot: the telemetry layer uses it to emit failpoint-trip trace
/// events without this support library depending on telemetry. Pass null to
/// uninstall. The previous observer is returned.
using FailpointFireObserver = void (*)(const char *SiteName);
FailpointFireObserver setFailpointFireObserver(FailpointFireObserver Obs);
/// @}

/// The named sites wired into the runtime. See DESIGN.md §8 for the
/// catalog of what each site simulates and whether the runtime survives it.
namespace faults {
extern Failpoint HeapHostAlloc;     ///< "heap.host_alloc"
extern Failpoint HeapBlockAcquire;  ///< "heap.block_acquire"
extern Failpoint SemispaceEvacuate; ///< "semispace.evacuate"
extern Failpoint SemispaceGuard;    ///< "semispace.guard"
extern Failpoint GenPromote;        ///< "gen.promote"
extern Failpoint GenPromoteGuard;   ///< "gen.promote.guard"
extern Failpoint GcWorkerStart;     ///< "gc.worker.start"
extern Failpoint SinkWrite;         ///< "sink.write"
extern Failpoint EngineShed;        ///< "engine.shed"
extern Failpoint CorruptHeader;     ///< "corrupt.header"
extern Failpoint CorruptRef;        ///< "corrupt.ref"
extern Failpoint CorruptFreeCell;   ///< "corrupt.freelist"
extern Failpoint CorruptFreeLink;   ///< "corrupt.freelist.link"
extern Failpoint CorruptRemSet;     ///< "corrupt.remset"
extern Failpoint TlabRefill;        ///< "tlab.refill"
extern Failpoint SafepointTimeout;  ///< "safepoint.timeout"
extern Failpoint KvEvictLeak;       ///< "kv.evict.leak"
} // namespace faults

} // namespace gcassert

#endif // GCASSERT_SUPPORT_FAULTINJECTION_H
