//===- gcassert/support/Random.h - Deterministic PRNG ----------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic random number generation.
///
/// All workloads and property tests seed their own generator so that runs are
/// reproducible bit-for-bit; nothing in the library reads global entropy.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_RANDOM_H
#define GCASSERT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace gcassert {

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Fast, tiny state, and good enough statistical quality for workload
/// generation. Not suitable for cryptography.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow bound must be positive");
    // Lemire's multiply-shift rejection-free reduction (slightly biased for
    // huge bounds; fine for workload shaping).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform value in [Lo, Hi] inclusive. Requires Lo <= Hi.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(uint32_t Percent) {
    assert(Percent <= 100 && "percent out of range");
    return nextBelow(100) < Percent;
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_RANDOM_H
