//===- gcassert/support/WorkerPool.h - Parked GC worker pool ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reusable pool of GC worker threads. Threads are spawned once and
/// parked on a condition variable between collection cycles, so a parallel
/// collector pays thread-creation cost once per process, not once per GC.
///
/// The caller of run() participates as worker 0 (a pool of N workers owns
/// N-1 OS threads), which keeps the single-thread configuration free of any
/// cross-thread hand-off.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_WORKERPOOL_H
#define GCASSERT_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcassert {

/// Fork-join worker pool: run(Fn) invokes Fn(WorkerIndex) on every worker
/// concurrently and returns when all invocations complete. Not reentrant;
/// one run() at a time.
class WorkerPool {
public:
  /// Creates a pool of \p WorkerCount workers (at least 1). WorkerCount - 1
  /// OS threads are spawned immediately and parked. A thread that fails to
  /// spawn (std::system_error, or the "gc.worker.start" failpoint) shrinks
  /// the pool instead of aborting: worker indices stay contiguous and
  /// workerCount() reports the achieved size, so parallel phases degrade to
  /// fewer workers — in the worst case the caller alone.
  explicit WorkerPool(unsigned WorkerCount);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Achieved worker count (requested count minus spawn failures, >= 1).
  unsigned workerCount() const { return Workers; }

  /// How many of the requested workers failed to spawn.
  unsigned spawnFailures() const { return SpawnFailures; }

  /// Runs \p Fn(WorkerIndex) on all workers; the calling thread is worker 0.
  /// Returns after every worker finished. Establishes happens-before edges
  /// both into and out of the parallel region (via the pool's mutex), so
  /// plain memory written before run() is visible to workers and plain
  /// memory written by workers is visible to the caller afterwards.
  void run(const std::function<void(unsigned Worker)> &Fn);

private:
  void threadMain(unsigned Worker);

  unsigned Workers;
  unsigned SpawnFailures = 0;
  std::vector<std::thread> Threads;

  std::mutex Mutex;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  const std::function<void(unsigned)> *Job = nullptr;
  uint64_t Generation = 0;
  unsigned Running = 0;
  bool ShuttingDown = false;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_WORKERPOOL_H
