//===- Checksum.h - CRC-32C and header checksum folding ------------------===//
//
// Part of the gcassert project, under the MIT License.
//
// Small constexpr CRC-32C (Castagnoli) implementation used by the hardened
// heap mode (DESIGN.md §9) to checksum object headers. The full 32-bit CRC
// is folded to 16 bits so it fits in the spare upper half of the header flag
// word without growing the 8-byte header.
//
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_CHECKSUM_H
#define GCASSERT_SUPPORT_CHECKSUM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace gcassert {

namespace detail {

/// Byte-at-a-time table for CRC-32C (polynomial 0x1EDC6F41, reflected
/// 0x82F63B78) — the same polynomial the SSE4.2 crc32 instruction uses,
/// computed in portable code so the checksum is identical on every host.
constexpr std::array<uint32_t, 256> makeCrc32cTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? (0x82F63B78u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

inline constexpr std::array<uint32_t, 256> Crc32cTable = makeCrc32cTable();

} // namespace detail

/// CRC-32C over \p Size bytes starting at \p Data. \p Seed allows chaining;
/// pass the previous return value to continue a running checksum.
inline uint32_t crc32c(const void *Data, size_t Size, uint32_t Seed = 0) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I < Size; ++I)
    C = detail::Crc32cTable[(C ^ Bytes[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

/// Fold a 32-bit CRC to 16 bits by xoring the halves. Keeps the error
/// detection properties good enough for a tamper check while fitting in the
/// header's spare bits.
inline uint16_t foldChecksum16(uint32_t Crc) {
  return static_cast<uint16_t>((Crc >> 16) ^ (Crc & 0xFFFF));
}

/// Convenience: 16-bit CRC-32C over two little-endian words. This is the
/// exact domain of the object-header checksum: the type id and the logical
/// allocation length (array length for arrays, 0 otherwise). Mutable flag
/// bits are deliberately *outside* the domain — the assertion engine and
/// ownership table flip HF_Dead/HF_Unshared/HF_Owner/HF_Ownee/HF_Owned at
/// runtime, and the collector itself owns HF_Marked/HF_Forwarded.
inline uint16_t checksum16Pair(uint32_t A, uint64_t B) {
  uint8_t Buf[12];
  std::memcpy(Buf, &A, 4);
  std::memcpy(Buf + 4, &B, 8);
  return foldChecksum16(crc32c(Buf, sizeof(Buf)));
}

} // namespace gcassert

#endif // GCASSERT_SUPPORT_CHECKSUM_H
