//===- gcassert/support/Format.h - printf-style string building -*- C++ -*-==//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string, used for diagnostics and
/// benchmark table rows.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_FORMAT_H
#define GCASSERT_SUPPORT_FORMAT_H

#include <string>

namespace gcassert {

/// Formats like printf and returns the result as a std::string.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
format(const char *Fmt, ...);

} // namespace gcassert

#endif // GCASSERT_SUPPORT_FORMAT_H
