//===- gcassert/support/ErrorHandling.h - Fatal error reporting -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting for programmatic errors and unreachable code.
///
/// gcassert library code does not use exceptions. Invariant violations abort
/// through reportFatalError / gcaUnreachable with a diagnostic message, in the
/// style of llvm::report_fatal_error and llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_ERRORHANDLING_H
#define GCASSERT_SUPPORT_ERRORHANDLING_H

#include <functional>

namespace gcassert {

/// Prints \p Msg to stderr and aborts the process.
///
/// Use for unrecoverable environment errors (e.g. the managed heap is
/// exhausted and cannot grow). Never returns.
[[noreturn]] void reportFatalError(const char *Msg);

/// Like reportFatalError, but first runs every registered crash-dump
/// provider so the abort carries diagnostic state (heap histogram, GC
/// statistics, violation-log tail). A provider that itself hits a fatal
/// error does not recurse: the nested call prints its message and aborts
/// without re-running providers. Never returns.
[[noreturn]] void reportFatalErrorWithDiagnostics(const char *Msg);

/// Registers a crash-dump provider: a callback that prints one section of
/// diagnostic state to stderr when reportFatalErrorWithDiagnostics runs.
/// \p Label heads the section ("vm", "violations", ...). Returns an id for
/// unregisterCrashDumpProvider. Providers run newest-first.
unsigned registerCrashDumpProvider(const char *Label, std::function<void()> Fn);

/// Removes a provider registered with registerCrashDumpProvider. Unknown
/// ids are ignored.
void unregisterCrashDumpProvider(unsigned Id);

/// RAII registration of a crash-dump provider, for objects whose dump
/// callback must not outlive them (the Vm, a bounded violation sink).
class ScopedCrashDumpProvider {
public:
  ScopedCrashDumpProvider(const char *Label, std::function<void()> Fn)
      : Id(registerCrashDumpProvider(Label, std::move(Fn))) {}
  ~ScopedCrashDumpProvider() { unregisterCrashDumpProvider(Id); }

  ScopedCrashDumpProvider(const ScopedCrashDumpProvider &) = delete;
  ScopedCrashDumpProvider &operator=(const ScopedCrashDumpProvider &) = delete;

private:
  unsigned Id;
};

/// Internal helper for the gcaUnreachable macro. Never returns.
[[noreturn]] void gcaUnreachableInternal(const char *Msg, const char *File,
                                         unsigned Line);

} // namespace gcassert

/// Marks a point in code that must never be executed. Prints the message,
/// file and line, then aborts.
#define gcaUnreachable(Msg)                                                    \
  ::gcassert::gcaUnreachableInternal(Msg, __FILE__, __LINE__)

#endif // GCASSERT_SUPPORT_ERRORHANDLING_H
