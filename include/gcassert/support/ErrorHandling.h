//===- gcassert/support/ErrorHandling.h - Fatal error reporting -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting for programmatic errors and unreachable code.
///
/// gcassert library code does not use exceptions. Invariant violations abort
/// through reportFatalError / gcaUnreachable with a diagnostic message, in the
/// style of llvm::report_fatal_error and llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_ERRORHANDLING_H
#define GCASSERT_SUPPORT_ERRORHANDLING_H

namespace gcassert {

/// Prints \p Msg to stderr and aborts the process.
///
/// Use for unrecoverable environment errors (e.g. the managed heap is
/// exhausted and cannot grow). Never returns.
[[noreturn]] void reportFatalError(const char *Msg);

/// Internal helper for the gcaUnreachable macro. Never returns.
[[noreturn]] void gcaUnreachableInternal(const char *Msg, const char *File,
                                         unsigned Line);

} // namespace gcassert

/// Marks a point in code that must never be executed. Prints the message,
/// file and line, then aborts.
#define gcaUnreachable(Msg)                                                    \
  ::gcassert::gcaUnreachableInternal(Msg, __FILE__, __LINE__)

#endif // GCASSERT_SUPPORT_ERRORHANDLING_H
