//===- gcassert/support/OStream.h - Lightweight output streams -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal raw_ostream-style output abstraction.
///
/// Library code never includes <iostream> (which injects static constructors
/// into every translation unit). OStream provides the small subset of
/// formatted output the runtime needs: strings, integers, floating point, and
/// pointers. Two concrete sinks are provided: FileOStream (stdout/stderr or
/// any FILE*) and StringOStream (accumulates into a std::string, used by
/// tests and by the violation reporter).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_OSTREAM_H
#define GCASSERT_SUPPORT_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace gcassert {

/// Abstract byte sink with formatted insertion operators.
class OStream {
public:
  virtual ~OStream();

  /// Writes \p Size bytes from \p Data to the underlying sink.
  virtual void write(const char *Data, size_t Size) = 0;

  /// Flushes buffered output, if the sink buffers.
  virtual void flush() {}

  OStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }
  OStream &operator<<(const char *S) { return *this << std::string_view(S); }
  OStream &operator<<(const std::string &S) {
    return *this << std::string_view(S);
  }
  OStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  OStream &operator<<(int64_t N);
  OStream &operator<<(uint64_t N);
  OStream &operator<<(int32_t N) { return *this << static_cast<int64_t>(N); }
  OStream &operator<<(uint32_t N) { return *this << static_cast<uint64_t>(N); }
  OStream &operator<<(double D);
  OStream &operator<<(const void *P);
};

/// Writes to a FILE*. Does not own the handle.
class FileOStream : public OStream {
public:
  explicit FileOStream(std::FILE *Handle) : Handle(Handle) {}

  void write(const char *Data, size_t Size) override;
  void flush() override;

private:
  std::FILE *Handle;
};

/// Accumulates output into an owned std::string.
class StringOStream : public OStream {
public:
  void write(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }

  const std::string &str() const { return Buffer; }
  void clear() { Buffer.clear(); }

private:
  std::string Buffer;
};

/// Returns a process-wide stream bound to stdout.
OStream &outs();

/// Returns a process-wide stream bound to stderr.
OStream &errs();

} // namespace gcassert

#endif // GCASSERT_SUPPORT_OSTREAM_H
