//===- gcassert/support/Timer.h - Monotonic timing --------------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic clock access and simple accumulation timers used by the GC and
/// the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SUPPORT_TIMER_H
#define GCASSERT_SUPPORT_TIMER_H

#include <cstdint>

namespace gcassert {

/// Returns the current monotonic time in nanoseconds.
uint64_t monotonicNanos();

/// Accumulates elapsed time across multiple start/stop intervals.
class AccumulatingTimer {
public:
  void start() { StartNanos = monotonicNanos(); }

  void stop() { TotalNanos += monotonicNanos() - StartNanos; }

  uint64_t totalNanos() const { return TotalNanos; }
  double totalMillis() const { return static_cast<double>(TotalNanos) / 1e6; }
  void reset() { TotalNanos = 0; }

private:
  uint64_t StartNanos = 0;
  uint64_t TotalNanos = 0;
};

/// RAII interval that adds its lifetime to an AccumulatingTimer.
class TimerScope {
public:
  explicit TimerScope(AccumulatingTimer &Timer) : Timer(Timer) {
    Timer.start();
  }
  ~TimerScope() { Timer.stop(); }

  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  AccumulatingTimer &Timer;
};

} // namespace gcassert

#endif // GCASSERT_SUPPORT_TIMER_H
