//===- gcassert/heap/ObjectHeader.h - Object header word --------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-object header: type id plus a flag word with the GC mark bit and
/// the "spare bits" the paper steals for assertion state.
///
/// The paper (§2.3.1, §2.5.1) stores assert-dead and assert-unshared state in
/// spare bits of the Jikes RVM object header so the assertions have no space
/// overhead. We reproduce that layout: every managed object starts with an
/// 8-byte header holding a 32-bit type id and a 32-bit flag word.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_OBJECTHEADER_H
#define GCASSERT_HEAP_OBJECTHEADER_H

#include <atomic>
#include <cstdint>

namespace gcassert {

/// Index of a type in the TypeRegistry. Id 0 is reserved: a cell whose header
/// has type id 0 is a free cell, not an object.
using TypeId = uint32_t;

/// The reserved invalid / free-cell type id.
inline constexpr TypeId InvalidTypeId = 0;

/// Per-object flag bits stored in the header flag word.
enum HeaderFlag : uint32_t {
  /// GC mark bit. Set during tracing, cleared by sweep (mark-sweep) or
  /// implied by forwarding (semispace).
  HF_Marked = 1u << 0,
  /// assert-dead: this object must not be reachable at the next GC (§2.3.1).
  HF_Dead = 1u << 1,
  /// assert-unshared: this object must have at most one incoming reference
  /// (§2.5.1).
  HF_Unshared = 1u << 2,
  /// This object is the ownee of some assert-ownedby pair (§2.5.2).
  HF_Ownee = 1u << 3,
  /// Set during the ownership phase when the ownee was reached from its
  /// owner; cleared at the start of every GC.
  HF_Owned = 1u << 4,
  /// This object is the owner of some assert-ownedby pair (§2.5.2).
  HF_Owner = 1u << 5,
  /// Semispace collector: the object has been copied; the first payload word
  /// holds the forwarding pointer.
  HF_Forwarded = 1u << 6,
};

/// \name Hardened-mode header checksum (DESIGN.md §9)
///
/// The hardened heap mode stores a 16-bit checksum of the immutable header
/// state (type id + logical allocation length) in the otherwise-spare upper
/// half of the flag word. Bits 0–6 carry the HeaderFlag bits above; bits
/// 7–15 remain free. The checksum bits are never touched by setFlag /
/// clearFlag / tryMarkAtomic (those only OR or AND-NOT the low bits), so the
/// stamp survives the full life of the object, including copying and
/// compaction (which memcpy / memmove the whole header).
/// @{
inline constexpr unsigned HF_ChecksumShift = 16;
inline constexpr uint32_t HF_ChecksumMask = 0xFFFF0000u;
/// @}

/// The 8-byte header that precedes every managed object's payload.
struct ObjectHeader {
  TypeId Type;
  uint32_t Flags;

  bool testFlag(HeaderFlag F) const { return (Flags & F) != 0; }
  void setFlag(HeaderFlag F) { Flags |= F; }
  void clearFlag(HeaderFlag F) { Flags &= ~static_cast<uint32_t>(F); }

  bool isMarked() const { return testFlag(HF_Marked); }
  void setMarked() { setFlag(HF_Marked); }
  void clearMarked() { clearFlag(HF_Marked); }

  /// \name Atomic flag access for the parallel mark phase
  ///
  /// During a parallel trace, the mark bit is the only mutating header state
  /// and every worker accesses the flag word through these (std::atomic_ref
  /// over the plain field, so the sequential collectors keep their
  /// zero-overhead non-atomic accesses). The acquire/release pairing makes
  /// an object's fields visible to whichever worker wins the claim.
  /// @{

  /// Atomically sets the mark bit; returns true iff this call claimed the
  /// object (the bit was clear before). Two workers racing on the same
  /// object get exactly one winner, so no object is scanned twice.
  bool tryMarkAtomic() {
    uint32_t Old = std::atomic_ref<uint32_t>(Flags).fetch_or(
        static_cast<uint32_t>(HF_Marked), std::memory_order_acq_rel);
    return (Old & HF_Marked) == 0;
  }

  /// Atomic snapshot of the flag word.
  uint32_t loadFlagsAcquire() const {
    return std::atomic_ref<uint32_t>(const_cast<uint32_t &>(Flags))
        .load(std::memory_order_acquire);
  }
  /// @}

  /// True if this header belongs to a live object (not a free cell).
  bool isObject() const { return Type != InvalidTypeId; }

  /// \name Hardened-mode checksum accessors
  /// @{
  uint16_t storedChecksum() const {
    return static_cast<uint16_t>(Flags >> HF_ChecksumShift);
  }
  void setStoredChecksum(uint16_t Sum) {
    Flags = (Flags & ~HF_ChecksumMask) |
            (static_cast<uint32_t>(Sum) << HF_ChecksumShift);
  }
  /// @}
};

static_assert(sizeof(ObjectHeader) == 8, "object header must be one word");

} // namespace gcassert

#endif // GCASSERT_HEAP_OBJECTHEADER_H
