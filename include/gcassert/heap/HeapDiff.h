//===- gcassert/heap/HeapDiff.h - Histogram differencing -------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differencing of two heap histograms — the core operation of the
/// heap-differencing leak tools the paper relates to (JRockit, LeakBot,
/// Cork, …): take a snapshot before and after, and ask which types grew.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_HEAPDIFF_H
#define GCASSERT_HEAP_HEAPDIFF_H

#include "gcassert/heap/HeapHistogram.h"

namespace gcassert {

/// Per-type growth between two snapshots.
struct TypeDelta {
  std::string TypeName;
  int64_t InstanceDelta;
  int64_t ByteDelta;
};

/// Computes After − Before per type (types absent from one side count as
/// zero there), dropping all-zero rows and sorting by byte growth
/// descending.
std::vector<TypeDelta> diffHeapHistograms(
    const std::vector<TypeOccupancy> &Before,
    const std::vector<TypeOccupancy> &After);

/// Renders a diff as an aligned text table into \p Out (at most \p MaxRows
/// rows; 0 = all).
void printHeapDiff(OStream &Out, const std::vector<TypeDelta> &Diff,
                   size_t MaxRows = 0);

} // namespace gcassert

#endif // GCASSERT_HEAP_HEAPDIFF_H
