//===- gcassert/heap/TypeInfo.h - Managed type descriptors ------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TypeInfo describes the layout of a managed type: which payload offsets
/// hold references (so the tracer can scan them) and, following the paper's
/// RVMClass modification (§2.4.1), two extra words per type for the
/// assert-instances limit and the per-GC live-instance count.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_TYPEINFO_H
#define GCASSERT_HEAP_TYPEINFO_H

#include "gcassert/heap/ObjectHeader.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gcassert {

/// Shape of a managed type.
enum class TypeKind : uint8_t {
  /// Fixed-size object with named fields.
  Class,
  /// Variable-length array of references.
  RefArray,
  /// Variable-length array of raw (untraced) bytes.
  DataArray,
};

/// One named field of a Class type.
struct FieldInfo {
  std::string Name;
  /// Byte offset from the start of the payload.
  uint32_t Offset;
  /// Size in bytes (8 for references).
  uint32_t Size;
  bool IsRef;
};

/// Layout and assertion metadata for one managed type. Instances are owned
/// by the TypeRegistry and referenced by TypeId.
class TypeInfo {
public:
  TypeId id() const { return Id; }
  const std::string &name() const { return Name; }
  TypeKind kind() const { return Kind; }

  bool isArray() const { return Kind != TypeKind::Class; }

  /// Size in bytes of the fixed payload (Class types only).
  uint32_t payloadSize() const { return PayloadSize; }

  /// Element size in bytes (array types only).
  uint32_t elementSize() const { return ElementSize; }

  /// Payload offsets of all reference fields (Class types only).
  const std::vector<uint32_t> &refOffsets() const { return RefOffsets; }

  /// All declared fields, in declaration order (Class types only).
  const std::vector<FieldInfo> &fields() const { return Fields; }

  /// Returns the field that starts at \p Offset, or null. Used to print
  /// field names on heap paths.
  const FieldInfo *fieldAtOffset(uint32_t Offset) const;

  /// \name assert-instances storage (the paper's two words per loaded class)
  /// @{
  bool isInstanceTracked() const { return InstanceTracked; }
  uint32_t instanceLimit() const { return InstanceLimit; }
  uint32_t liveCount() const { return LiveCount; }

  void setInstanceLimit(uint32_t Limit) {
    InstanceTracked = true;
    InstanceLimit = Limit;
  }
  void clearInstanceLimit() {
    InstanceTracked = false;
    InstanceLimit = 0;
  }
  void resetLiveCount() { LiveCount = 0; }
  void incrementLiveCount() { ++LiveCount; }
  /// Parallel-trace variant: relaxed atomic increment. The count is only
  /// read after the trace joins, so no ordering is needed beyond atomicity.
  void incrementLiveCountAtomic() {
    std::atomic_ref<uint32_t>(LiveCount).fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  /// @}

  /// \name assert-volume storage (§2.4 also allows limits on "total volume")
  /// @{
  bool isVolumeTracked() const { return VolumeTracked; }
  uint64_t volumeLimit() const { return VolumeLimit; }
  uint64_t liveBytes() const { return LiveBytes; }

  void setVolumeLimit(uint64_t LimitBytes) {
    VolumeTracked = true;
    VolumeLimit = LimitBytes;
  }
  void clearVolumeLimit() {
    VolumeTracked = false;
    VolumeLimit = 0;
  }
  void resetLiveBytes() { LiveBytes = 0; }
  void addLiveBytes(uint64_t Bytes) { LiveBytes += Bytes; }
  /// Parallel-trace variant of addLiveBytes.
  void addLiveBytesAtomic(uint64_t Bytes) {
    std::atomic_ref<uint64_t>(LiveBytes).fetch_add(Bytes,
                                                   std::memory_order_relaxed);
  }
  /// @}

private:
  friend class TypeRegistry;
  friend class TypeBuilder;

  TypeId Id = InvalidTypeId;
  std::string Name;
  TypeKind Kind = TypeKind::Class;
  uint32_t PayloadSize = 0;
  uint32_t ElementSize = 0;
  std::vector<uint32_t> RefOffsets;
  std::vector<FieldInfo> Fields;

  bool InstanceTracked = false;
  uint32_t InstanceLimit = 0;
  uint32_t LiveCount = 0;

  bool VolumeTracked = false;
  uint64_t VolumeLimit = 0;
  uint64_t LiveBytes = 0;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_TYPEINFO_H
