//===- gcassert/heap/Heap.h - Managed heap interface ------------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap is the interface both heap organizations implement: the segregated
/// free-list heap that backs the MarkSweep collector (the paper's
/// configuration) and the semispace heap that backs the copying collector.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_HEAP_H
#define GCASSERT_HEAP_HEAP_H

#include "gcassert/heap/Hardening.h"
#include "gcassert/heap/Object.h"
#include "gcassert/heap/TypeRegistry.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace gcassert {

/// Allocation and occupancy counters for one heap.
struct HeapStats {
  /// Cumulative bytes requested by successful allocations (rounded sizes).
  uint64_t BytesAllocated = 0;
  /// Cumulative number of successful allocations.
  uint64_t ObjectsAllocated = 0;
  /// Bytes currently held by live-or-unswept objects (rounded sizes).
  uint64_t BytesInUse = 0;
  /// Configured capacity in bytes.
  uint64_t BytesCapacity = 0;
};

/// Why the most recent allocate() call returned null.
enum class AllocFailureKind : uint8_t {
  /// The most recent allocation succeeded.
  None,
  /// Managed space is exhausted; a collection may reclaim room.
  HeapFull,
  /// The host allocator refused backing storage (large-object path). A
  /// collection of the managed heap cannot help directly, but freeing
  /// large objects can.
  HostAllocFailed,
};

/// Abstract managed heap.
///
/// allocate() returns null when the heap cannot satisfy the request; the
/// runtime responds by running a collection and retrying, escalating
/// through the emergency cascade in Vm::allocateSlowPath. Payloads of new
/// objects are zero-filled, so every reference field starts as null.
class Heap {
public:
  explicit Heap(TypeRegistry &Types) : Types(Types) {}
  virtual ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocates an object of type \p Id (with \p ArrayLength elements for
  /// array types). Returns null if the heap is full (and records why in
  /// lastAllocFailure()).
  virtual ObjRef allocate(TypeId Id, uint64_t ArrayLength) = 0;

  /// Calls \p Fn for every object currently in the heap (live or not yet
  /// swept). Used by leak detectors, auditors, and tests.
  virtual void forEachObject(const std::function<void(ObjRef)> &Fn) = 0;

  /// True if \p Ptr points into heap-managed storage.
  virtual bool contains(const void *Ptr) const = 0;

  /// Why the most recent allocate() returned null (None after a success).
  /// Under concurrent mutators the value is advisory — it names *a* recent
  /// failure, read by OOM diagnostics with the world effectively stopped.
  AllocFailureKind lastAllocFailure() const {
    return LastAllocFailure.load(std::memory_order_relaxed);
  }

  /// Live bytes measured by the most recent completed collection (0 before
  /// the first). The assertion engine's degradation ladder reads this as
  /// its occupancy signal: unlike stats().BytesInUse — which saturates
  /// right before every exhaustion-triggered collection — it reflects how
  /// full the heap stays after reclaim.
  virtual uint64_t liveBytesAfterLastGc() const { return 0; }

  /// True when forEachObject is safe right now. Moving heaps return false
  /// mid-evacuation (forwarding overwrites payload words); crash
  /// diagnostics consult this before dumping a histogram.
  virtual bool safeToEnumerate() const { return true; }

  TypeRegistry &types() { return Types; }
  const TypeRegistry &types() const { return Types; }

  const HeapStats &stats() const { return Stats; }

  /// \name Hardened heap mode (DESIGN.md §9)
  /// @{

  /// Attaches the hardening subsystem. From here on the heap stamps header
  /// checksums at allocation, poisons freed storage, and keeps whatever
  /// side metadata its organization needs to walk past corrupt headers.
  /// Must be called before the first allocation (headers allocated earlier
  /// would carry no stamp and fail verification). Null detaches.
  virtual void setHardening(HeapHardening *H) {
    assert((!H || Stats.ObjectsAllocated == 0) &&
           "hardening must attach before the first allocation");
    Hard = H;
  }
  HeapHardening *hardening() const { return Hard; }

  /// Audits heap-organization-specific structures (free lists, remembered
  /// sets) and appends one HeapDefect per violation. With \p Repair set,
  /// additionally contains the damage (e.g. truncates a corrupt free list)
  /// so the mutator can continue. Default: nothing to audit.
  virtual void auditStructure(std::vector<HeapDefect> &Defects, bool Repair) {
    (void)Defects;
    (void)Repair;
  }
  /// @}

protected:
  TypeRegistry &Types;
  HeapStats Stats;
  /// Atomic (relaxed) because concurrent allocation paths record failures
  /// without coordinating; see lastAllocFailure().
  std::atomic<AllocFailureKind> LastAllocFailure{AllocFailureKind::None};
  HeapHardening *Hard = nullptr;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_HEAP_H
