//===- gcassert/heap/SemiSpaceHeap.h - Two-space copying heap ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bump-pointer two-space heap that backs the SemiSpace copying
/// collector. The paper's technique "will work with any tracing collector"
/// (§2.2); this heap lets us demonstrate that claim with a collector whose
/// mechanics (evacuation, forwarding pointers) differ completely from
/// MarkSweep while the assertion hooks stay identical.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_SEMISPACEHEAP_H
#define GCASSERT_HEAP_SEMISPACEHEAP_H

#include "gcassert/heap/Heap.h"

#include <memory>
#include <mutex>
#include <vector>

namespace gcassert {

/// Configuration for a SemiSpaceHeap.
struct SemiSpaceHeapConfig {
  /// Total capacity in bytes; each semispace gets half.
  size_t CapacityBytes = 64u << 20;
};

/// Classic two-space bump-pointer heap. Mutators allocate in the current
/// space; a collection evacuates live objects into the other space and flips.
class SemiSpaceHeap : public Heap {
public:
  SemiSpaceHeap(TypeRegistry &Types, const SemiSpaceHeapConfig &Config);

  ObjRef allocate(TypeId Id, uint64_t ArrayLength) override;
  void forEachObject(const std::function<void(ObjRef)> &Fn) override;
  bool contains(const void *Ptr) const override;

  /// \name Collector interface
  /// @{

  /// Prepares the inactive space to receive evacuated objects.
  void beginCollection();

  /// Copies \p From into the to-space and returns the new address. \p From
  /// must not already be forwarded. Aborts (with crash diagnostics) if the
  /// to-space overflows: live data can never exceed a semispace by
  /// construction of allocate(), and mid-copy there is nothing left to
  /// recover to.
  ObjRef copyObject(ObjRef From);

  /// Flips the spaces: the to-space becomes the allocation space.
  void finishCollection();

  /// Bytes an object occupies in this heap (allocation size rounded to
  /// pointer alignment).
  size_t objectSize(ObjRef Obj) const;

  /// True if \p Ptr lies in the space being evacuated *into*. Only
  /// meaningful between beginCollection() and finishCollection(): an object
  /// already in the to-space has been visited and must not be copied again
  /// (the ownership phase can surface to-space references during the root
  /// scan, because it updates slots of objects that are themselves
  /// evacuated later).
  bool inToSpace(const void *Ptr) const {
    const uint8_t *Base = spaceBase(1 - CurrentSpace);
    const uint8_t *P = static_cast<const uint8_t *>(Ptr);
    return P >= Base && P < Base + HalfBytes;
  }

  /// Bytes of live data after the last collection.
  uint64_t liveBytesAfterLastCollection() const { return LiveBytesAfterGc; }

  uint64_t liveBytesAfterLastGc() const override { return LiveBytesAfterGc; }

  /// Mid-evacuation the from-space holds forwarded shells whose payload
  /// words are overwritten; walking is unsafe until finishCollection().
  bool safeToEnumerate() const override { return !Collecting; }

  /// True when the bytes currently allocated exceed what one semispace can
  /// absorb — the evacuation-overflow invariant is at risk and the
  /// collector should shed pressure before moving anything. By
  /// construction of allocate() this never triggers; the
  /// "semispace.guard" failpoint simulates it.
  bool evacuationAtRisk() const {
    return static_cast<uint64_t>(Bump - spaceBase(CurrentSpace)) > HalfBytes;
  }
  /// @}

private:
  uint8_t *spaceBase(int Index) const {
    return Storage.get() + static_cast<size_t>(Index) * HalfBytes;
  }

  std::unique_ptr<uint8_t[]> Storage;
  size_t HalfBytes;
  int CurrentSpace = 0;
  uint8_t *Bump;
  uint8_t *Limit;
  /// Serializes concurrent mutator allocations (the bump and the stats).
  /// Collection-side paths run with the world stopped and stay lock-free.
  mutable std::mutex AllocMutex;
  /// Valid only between beginCollection() and finishCollection().
  uint8_t *CopyBump = nullptr;
  uint64_t LiveBytesAfterGc = 0;
  bool Collecting = false;

  /// Hardened mode only: per-object allocation sizes in address order for
  /// the current space, so forEachObject can step over an object with a
  /// corrupt header instead of deriving a garbage stride from it.
  /// Evacuation rebuilds the log in copy order (= to-space address order).
  std::vector<uint32_t> SizeLog;
  std::vector<uint32_t> CopySizeLog;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_SEMISPACEHEAP_H
