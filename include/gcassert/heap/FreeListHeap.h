//===- gcassert/heap/FreeListHeap.h - Segregated free-list heap -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-moving heap that backs the MarkSweep collector, mirroring the
/// MMTk MarkSweep space the paper uses in Jikes RVM.
///
/// Organization: a fixed arena carved into 64 KiB blocks. Each carved block
/// belongs to one size class and is divided into equal cells. Free cells are
/// threaded onto per-class free lists; a cell is free iff its header's type
/// id is 0. Objects larger than the largest size class go to a malloc-backed
/// large-object space charged against the same capacity budget.
///
/// Concurrency: the shared allocation paths serialize on one allocation
/// mutex. Concurrent mutators avoid it almost entirely through per-thread
/// TLABs (allocateWithTlab): a thread bumps through a private run of cells
/// and touches the mutex only to refill. The large-object path CAS-claims
/// its budget and runs the host allocation outside any lock. Sweeping and
/// enumeration require a stopped world (the Vm's safepoint protocol
/// guarantees it).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_FREELISTHEAP_H
#define GCASSERT_HEAP_FREELISTHEAP_H

#include "gcassert/heap/Heap.h"
#include "gcassert/heap/SizeClasses.h"
#include "gcassert/heap/Tlab.h"
#include "gcassert/support/Compiler.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace gcassert {

class WorkerPool;

/// Configuration for a FreeListHeap.
struct FreeListHeapConfig {
  /// Total capacity in bytes (arena plus large-object budget).
  size_t CapacityBytes = 64u << 20;
};

/// Segregated-fit free-list heap. Objects never move.
class FreeListHeap : public Heap {
public:
  FreeListHeap(TypeRegistry &Types, const FreeListHeapConfig &Config);
  ~FreeListHeap() override;

  /// Shared (mutex-serialized) allocation path. Thread-safe.
  ObjRef allocate(TypeId Id, uint64_t ArrayLength) override;

  /// \name TLAB allocation (DESIGN.md §13)
  /// @{

  /// The per-thread fast path: bump \p T's bin for the request's size
  /// class, falling back to the private free chain, then to a locked
  /// refill, then to the shared path. Large requests take the CAS-claimed
  /// large-object path. Returns null only on genuine exhaustion (same
  /// contract as allocate()). \p T must belong to the calling thread.
  ObjRef allocateWithTlab(TlabSet &T, TypeId Id, uint64_t ArrayLength);

  /// Restocks \p T's bin for \p ClassIndex under the allocation mutex:
  /// first from the shared free list (a batch of recycled cells), else by
  /// slicing a bump run from the class's TLAB block, carving a fresh block
  /// when needed. Returns false when the heap is out of room for this
  /// class (or the "tlab.refill" failpoint fired), leaving the bin empty.
  bool refillTlab(TlabSet &T, uint32_t ClassIndex);

  /// Retires \p T: folds its pending stats into the shared HeapStats and
  /// drops its bins. Called for every mutator at each safepoint, before
  /// the sweep — the abandoned cells still carry free headers, so the
  /// sweep re-threads them. Safe to call from the stopping thread on
  /// behalf of parked threads.
  void retireTlab(TlabSet &T);

  /// Drops the heap-side per-class TLAB blocks (their unconsumed cells are
  /// re-threaded by the sweep, like retired bins). Called with the world
  /// stopped, before sweeping; sweep() also does this defensively.
  void dropTlabBlocks();
  /// @}

  void forEachObject(const std::function<void(ObjRef)> &Fn) override;
  bool contains(const void *Ptr) const override;

  /// Reclaims every unmarked object and clears the mark bit on survivors.
  /// Rebuilds the free lists; fully-free blocks are returned to the block
  /// pool so another size class can reuse them. Returns bytes reclaimed.
  ///
  /// With a non-null \p Pool of more than one worker, blocks are swept in
  /// parallel: workers claim fixed-size chunks of blocks and build per-chunk
  /// free-list segments that are spliced afterwards in the exact order the
  /// sequential sweep would have produced — the resulting heap state is
  /// byte-identical for any worker count. The large-object sweep stays
  /// sequential (it frees host memory and is a short list).
  size_t sweep(WorkerPool *Pool = nullptr);

  /// Bytes occupied by live objects after the last sweep.
  uint64_t liveBytesAfterLastSweep() const { return LiveBytesAfterSweep; }

  uint64_t liveBytesAfterLastGc() const override {
    return LiveBytesAfterSweep;
  }

  /// Unoccupied bytes in the small-object arena (excludes the large-object
  /// budget). An estimate: carved-block slack is not reclaimed until those
  /// cells free up, so treat this as an upper bound on what allocation can
  /// still deliver.
  uint64_t arenaBytesFree() const {
    uint64_t ArenaInUse =
        Stats.BytesInUse - LargeBytesInUse.load(std::memory_order_relaxed);
    return ArenaBytes > ArenaInUse ? ArenaBytes - ArenaInUse : 0;
  }

  /// Number of 64 KiB blocks currently carved for some size class.
  size_t carvedBlockCount() const;

  /// Size-class cell size used for an allocation of \p Bytes, or 0 if the
  /// request goes to the large-object space. Exposed for tests.
  static size_t sizeClassCellSize(size_t Bytes);

  /// Audits every per-class free list: cycle bound (block metadata gives
  /// the true cell capacity per class), in-arena bounds, cell-boundary
  /// alignment, class membership, and that every entry is actually a free
  /// cell. With \p Repair, a corrupt list is truncated at the bad link.
  void auditStructure(std::vector<HeapDefect> &Defects, bool Repair) override;

  /// Lock-free approximation of stats().BytesInUse for pacing heuristics
  /// (the Vm's incremental occupancy trigger polls this from mutator
  /// context, where taking the allocation mutex or stopping the world per
  /// poll would defeat the point). Updated under the allocation mutex at
  /// every in-use change, so it lags true occupancy only by in-flight TLAB
  /// bumps (flushed at each refill/retire).
  uint64_t bytesInUseApprox() const {
    return InUseMirror.load(std::memory_order_relaxed);
  }

  /// Black allocation for incremental marking (DESIGN.md §15): while set,
  /// every fresh object is born with the mark bit, so objects allocated
  /// during an active incremental cycle survive the terminal sweep without
  /// ever being scanned (they cannot hold snapshot-era references the
  /// trace needs). Toggled only inside stop-the-world pauses. The mark bit
  /// is outside the header checksum's coverage (type id + array length),
  /// so hardened stamping is unaffected.
  void setAllocateBlack(bool B) {
    AllocateBlack.store(B, std::memory_order_relaxed);
  }

private:
  struct BlockInfo {
    /// Index into the size-class table; ~0u when the block is uncarved.
    uint32_t SizeClass = ~0u;
  };

  /// A heap-owned bump region: the not-yet-handed-out tail of a block
  /// carved for TLAB refills of one class.
  struct TlabBlock {
    uint8_t *Cur = nullptr;
    uint8_t *End = nullptr;
  };

  static constexpr size_t BlockSize = 64u * 1024;
  /// Blocks per parallel-sweep work unit: small enough to balance load,
  /// large enough that the per-chunk segment merge stays cheap.
  static constexpr size_t SweepChunkBlocks = 8;

  uint8_t *blockBase(size_t BlockIndex) const {
    return Arena.get() + BlockIndex * BlockSize;
  }

  ObjRef allocateSmall(size_t CellSize, uint32_t ClassIndex);
  ObjRef allocateLarge(TypeId Id, uint64_t ArrayLength, size_t Size);
  bool carveBlock(uint32_t ClassIndex);
  bool carveTlabBlock(uint32_t ClassIndex);
  void flushTlabStats(TlabSet &T);
  /// Hardened-mode poison check for a cell leaving a TLAB bin; quarantines
  /// damaged cells and returns false so the caller takes another.
  GCA_NOINLINE bool tlabCellClean(uint8_t *Cell, size_t CellSize,
                                  uint32_t ClassIndex);
  /// Stamps the header/array length/checksum of a fresh cell.
  ObjRef finishObject(uint8_t *Cell, TypeId Id, uint64_t ArrayLength) {
    auto Obj = reinterpret_cast<ObjRef>(Cell);
    Obj->header().Type = Id;
    Obj->header().Flags = 0;
    if (GCA_UNLIKELY(AllocateBlack.load(std::memory_order_relaxed)))
      Obj->header().setMarked();
    const TypeInfo &Type = Types.get(Id);
    if (Type.isArray())
      Obj->setArrayLength(ArrayLength);
    if (GCA_UNLIKELY(Hard != nullptr))
      Hard->stampObject(Obj, Type.isArray() ? ArrayLength : 0);
    return Obj;
  }
  bool sweepCarvedBlock(size_t BlockIndex, size_t CellSize, void **Head,
                        void **TailOut, size_t &Reclaimed,
                        uint64_t &LiveBytes);
  void sweepBlocksSequential(size_t &Reclaimed, uint64_t &LiveBytes);
  void sweepBlocksParallel(WorkerPool &Pool, size_t &Reclaimed,
                           uint64_t &LiveBytes);
  void sweepLargeObjects(size_t &Reclaimed);

  std::unique_ptr<uint8_t[]> Arena;
  size_t ArenaBytes;
  std::vector<BlockInfo> Blocks;
  std::vector<size_t> FreeBlocks;
  /// Head of the free-cell list per size class (null when empty). The next
  /// pointer of a free cell is stored in its first payload word.
  std::vector<void *> FreeLists;
  /// Per-class TLAB bump regions (see TlabBlock).
  std::vector<TlabBlock> TlabBlocks;

  /// Serializes the shared small-object path, TLAB refills/retires, and
  /// large-object bookkeeping. Never held across a host allocation or
  /// while sweeping (the world is stopped there).
  mutable std::mutex AllocMutex;

  struct LargeObject {
    void *Storage;
    size_t Size;
  };
  std::vector<LargeObject> LargeObjects;
  std::unordered_set<const void *> LargeObjectSet;
  /// Atomic so the large-object path can CAS-claim budget without the
  /// allocation mutex. Mutated outside the CAS only with the world stopped
  /// (sweep).
  std::atomic<size_t> LargeBytesInUse{0};
  size_t LargeBudget;

  uint64_t LiveBytesAfterSweep = 0;

  /// Born-marked allocation while an incremental cycle is active. Atomic
  /// only to keep the unsynchronized mutator reads well-defined: the flag
  /// flips exclusively inside stop-the-world pauses, so every mutator
  /// observes the new value via the safepoint rendezvous before it can
  /// allocate again.
  std::atomic<bool> AllocateBlack{false};
  /// See bytesInUseApprox().
  std::atomic<uint64_t> InUseMirror{0};
};

inline ObjRef FreeListHeap::allocateWithTlab(TlabSet &T, TypeId Id,
                                             uint64_t ArrayLength) {
  size_t Size = Types.allocationSize(Id, ArrayLength);
  if (GCA_UNLIKELY(Size > sizeclasses::MaxSmallSize))
    return allocateLarge(Id, ArrayLength, Size);

  uint32_t ClassIndex = sizeclasses::table().classFor(Size);
  size_t CellSize = sizeclasses::table().CellSizes[ClassIndex];
  TlabBin &Bin = T.bin(ClassIndex);
  uint8_t *Cell;
  for (;;) {
    if (GCA_LIKELY(Bin.BumpCur != Bin.BumpEnd)) {
      Cell = Bin.BumpCur;
      Bin.BumpCur += CellSize;
    } else if (Bin.LocalFree) {
      Cell = static_cast<uint8_t *>(Bin.LocalFree);
      std::memcpy(&Bin.LocalFree, Cell + sizeof(ObjectHeader),
                  sizeof(void *));
    } else if (refillTlab(T, ClassIndex)) {
      continue;
    } else {
      // Refill failed (heap full for this class, or the "tlab.refill"
      // failpoint): degrade to the shared path, which reports genuine
      // exhaustion to the Vm's emergency cascade.
      return allocate(Id, ArrayLength);
    }
    // Same dangling-write detection the shared path performs on free-list
    // pops; a damaged cell is quarantined and the loop takes another.
    if (GCA_UNLIKELY(Hard != nullptr) &&
        !tlabCellClean(Cell, CellSize, ClassIndex))
      continue;
    break;
  }
  std::memset(Cell + sizeof(ObjectHeader), 0, CellSize - sizeof(ObjectHeader));
  T.PendingBytes += CellSize;
  ++T.PendingObjects;
  return finishObject(Cell, Id, ArrayLength);
}

} // namespace gcassert

#endif // GCASSERT_HEAP_FREELISTHEAP_H
