//===- gcassert/heap/FreeListHeap.h - Segregated free-list heap -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-moving heap that backs the MarkSweep collector, mirroring the
/// MMTk MarkSweep space the paper uses in Jikes RVM.
///
/// Organization: a fixed arena carved into 64 KiB blocks. Each carved block
/// belongs to one size class and is divided into equal cells. Free cells are
/// threaded onto per-class free lists; a cell is free iff its header's type
/// id is 0. Objects larger than the largest size class go to a malloc-backed
/// large-object space charged against the same capacity budget.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_FREELISTHEAP_H
#define GCASSERT_HEAP_FREELISTHEAP_H

#include "gcassert/heap/Heap.h"

#include <memory>
#include <unordered_set>
#include <vector>

namespace gcassert {

class WorkerPool;

/// Configuration for a FreeListHeap.
struct FreeListHeapConfig {
  /// Total capacity in bytes (arena plus large-object budget).
  size_t CapacityBytes = 64u << 20;
};

/// Segregated-fit free-list heap. Objects never move.
class FreeListHeap : public Heap {
public:
  FreeListHeap(TypeRegistry &Types, const FreeListHeapConfig &Config);
  ~FreeListHeap() override;

  ObjRef allocate(TypeId Id, uint64_t ArrayLength) override;
  void forEachObject(const std::function<void(ObjRef)> &Fn) override;
  bool contains(const void *Ptr) const override;

  /// Reclaims every unmarked object and clears the mark bit on survivors.
  /// Rebuilds the free lists; fully-free blocks are returned to the block
  /// pool so another size class can reuse them. Returns bytes reclaimed.
  ///
  /// With a non-null \p Pool of more than one worker, blocks are swept in
  /// parallel: workers claim fixed-size chunks of blocks and build per-chunk
  /// free-list segments that are spliced afterwards in the exact order the
  /// sequential sweep would have produced — the resulting heap state is
  /// byte-identical for any worker count. The large-object sweep stays
  /// sequential (it frees host memory and is a short list).
  size_t sweep(WorkerPool *Pool = nullptr);

  /// Bytes occupied by live objects after the last sweep.
  uint64_t liveBytesAfterLastSweep() const { return LiveBytesAfterSweep; }

  uint64_t liveBytesAfterLastGc() const override {
    return LiveBytesAfterSweep;
  }

  /// Unoccupied bytes in the small-object arena (excludes the large-object
  /// budget). An estimate: carved-block slack is not reclaimed until those
  /// cells free up, so treat this as an upper bound on what allocation can
  /// still deliver.
  uint64_t arenaBytesFree() const {
    uint64_t ArenaInUse = Stats.BytesInUse - LargeBytesInUse;
    return ArenaBytes > ArenaInUse ? ArenaBytes - ArenaInUse : 0;
  }

  /// Number of 64 KiB blocks currently carved for some size class.
  size_t carvedBlockCount() const;

  /// Size-class cell size used for an allocation of \p Bytes, or 0 if the
  /// request goes to the large-object space. Exposed for tests.
  static size_t sizeClassCellSize(size_t Bytes);

  /// Audits every per-class free list: cycle bound (block metadata gives
  /// the true cell capacity per class), in-arena bounds, cell-boundary
  /// alignment, class membership, and that every entry is actually a free
  /// cell. With \p Repair, a corrupt list is truncated at the bad link.
  void auditStructure(std::vector<HeapDefect> &Defects, bool Repair) override;

private:
  struct BlockInfo {
    /// Index into the size-class table; ~0u when the block is uncarved.
    uint32_t SizeClass = ~0u;
  };

  static constexpr size_t BlockSize = 64u * 1024;
  /// Blocks per parallel-sweep work unit: small enough to balance load,
  /// large enough that the per-chunk segment merge stays cheap.
  static constexpr size_t SweepChunkBlocks = 8;

  uint8_t *blockBase(size_t BlockIndex) const {
    return Arena.get() + BlockIndex * BlockSize;
  }

  ObjRef allocateSmall(size_t CellSize, uint32_t ClassIndex);
  ObjRef allocateLarge(size_t Size);
  bool carveBlock(uint32_t ClassIndex);
  bool sweepCarvedBlock(size_t BlockIndex, size_t CellSize, void **Head,
                        void **TailOut, size_t &Reclaimed,
                        uint64_t &LiveBytes);
  void sweepBlocksSequential(size_t &Reclaimed, uint64_t &LiveBytes);
  void sweepBlocksParallel(WorkerPool &Pool, size_t &Reclaimed,
                           uint64_t &LiveBytes);
  void sweepLargeObjects(size_t &Reclaimed);

  std::unique_ptr<uint8_t[]> Arena;
  size_t ArenaBytes;
  std::vector<BlockInfo> Blocks;
  std::vector<size_t> FreeBlocks;
  /// Head of the free-cell list per size class (null when empty). The next
  /// pointer of a free cell is stored in its first payload word.
  std::vector<void *> FreeLists;

  struct LargeObject {
    void *Storage;
    size_t Size;
  };
  std::vector<LargeObject> LargeObjects;
  std::unordered_set<const void *> LargeObjectSet;
  size_t LargeBytesInUse = 0;
  size_t LargeBudget;

  uint64_t LiveBytesAfterSweep = 0;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_FREELISTHEAP_H
