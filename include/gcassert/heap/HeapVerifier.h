//===- gcassert/heap/HeapVerifier.h - Heap integrity checks ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HeapVerifier audits the structural invariants of a managed heap: every
/// object carries a registered type, every reference field points at a
/// well-formed object inside the heap, and (outside a collection) no mark
/// or forwarding state is left behind. Tests run it after collections; it
/// is also a useful debugging aid for new collector work.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_HEAPVERIFIER_H
#define GCASSERT_HEAP_HEAPVERIFIER_H

#include "gcassert/heap/Heap.h"

#include <string>
#include <vector>

namespace gcassert {

// HeapDefect lives in gcassert/heap/Hardening.h (pulled in through Heap.h):
// the verifier and the hardened heap mode share one defect vocabulary.

/// Structural heap auditor.
class HeapVerifier {
public:
  explicit HeapVerifier(Heap &TheHeap) : TheHeap(TheHeap) {}

  /// Audits every object in the heap. Mutator-time invariants are checked:
  /// valid type ids, in-heap well-formed reference targets, no residual
  /// mark or forwarding bits. Returns all defects found (empty = clean).
  std::vector<HeapDefect> verify();

  /// Convenience: true if verify() found nothing.
  bool isClean() { return verify().empty(); }

private:
  void checkReference(ObjRef Holder, const char *What, ObjRef Target,
                      std::vector<HeapDefect> &Defects);

  Heap &TheHeap;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_HEAPVERIFIER_H
