//===- gcassert/heap/TypeRegistry.h - Type registration ---------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TypeRegistry owns all TypeInfo descriptors for one virtual machine and
/// assigns TypeIds. TypeBuilder is the fluent layout builder workloads use
/// to declare class types.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_TYPEREGISTRY_H
#define GCASSERT_HEAP_TYPEREGISTRY_H

#include "gcassert/heap/TypeInfo.h"

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace gcassert {

/// Owns the TypeInfo table of one VM. TypeIds index into the table; id 0 is
/// reserved and never assigned.
class TypeRegistry {
public:
  TypeRegistry();

  /// Registers a reference-array type with the given name.
  TypeId registerRefArray(const std::string &Name);

  /// Registers a raw-data array type with \p ElementSize byte elements.
  TypeId registerDataArray(const std::string &Name, uint32_t ElementSize);

  /// Returns the descriptor for \p Id. \p Id must be valid.
  TypeInfo &get(TypeId Id) {
    assert(Id != InvalidTypeId && Id < Types.size() && "invalid type id");
    return *Types[Id];
  }
  const TypeInfo &get(TypeId Id) const {
    assert(Id != InvalidTypeId && Id < Types.size() && "invalid type id");
    return *Types[Id];
  }

  /// Looks a type up by name; returns null if not registered.
  const TypeInfo *lookup(const std::string &Name) const;

  /// Number of registered types (excluding the reserved id 0).
  size_t size() const { return Types.size() - 1; }

  /// Calls \p Fn for every registered type.
  template <typename FnT> void forEach(FnT Fn) {
    for (size_t I = 1, E = Types.size(); I != E; ++I)
      Fn(*Types[I]);
  }

  /// Total bytes an object of type \p Id with \p ArrayLength elements
  /// occupies, including the header, before size-class rounding.
  size_t allocationSize(TypeId Id, uint64_t ArrayLength) const;

private:
  friend class TypeBuilder;

  TypeId add(std::unique_ptr<TypeInfo> Type);

  std::vector<std::unique_ptr<TypeInfo>> Types;
  std::unordered_map<std::string, TypeId> ByName;
};

/// Fluent builder for Class-type layouts.
///
/// \code
///   TypeBuilder B(Registry, "Lspec/jbb/Order;");
///   uint32_t CustomerField = B.addRef("customer");
///   uint32_t TotalField = B.addScalar("total", 8);
///   TypeId OrderType = B.build();
/// \endcode
///
/// Reference fields are 8 bytes and 8-byte aligned; scalar fields are aligned
/// to min(size, 8). addRef/addScalar return the field's payload offset, which
/// is what Object::getRef / setRef take.
class TypeBuilder {
public:
  TypeBuilder(TypeRegistry &Registry, const std::string &Name);

  /// Appends a reference field and returns its payload offset.
  uint32_t addRef(const std::string &FieldName);

  /// Appends a \p Size byte scalar field and returns its payload offset.
  uint32_t addScalar(const std::string &FieldName, uint32_t Size);

  /// Finalizes the layout and registers the type. The builder must not be
  /// reused afterwards.
  TypeId build();

private:
  TypeRegistry &Registry;
  std::unique_ptr<TypeInfo> Type;
  uint32_t NextOffset = 0;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_TYPEREGISTRY_H
