//===- gcassert/heap/SizeClasses.h - Segregated-fit size classes -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The segregated-fit size-class table shared by FreeListHeap's free lists
/// and the per-thread TLAB bins (which must agree on the class geometry:
/// a TLAB bin hands out cells of exactly one class). Previously private to
/// FreeListHeap.cpp; hoisted so Tlab.h can size its per-class arrays at
/// compile time.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_SIZECLASSES_H
#define GCASSERT_HEAP_SIZECLASSES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcassert {
namespace sizeclasses {

/// Requests above this go to the large-object space.
inline constexpr size_t MaxSmallSize = 8192;

/// Number of size classes the table below builds: 16..128 step 8 (15),
/// 160..512 step 32 (12), 640..2048 step 128 (12), 2560..8192 step 512
/// (12). Compile-time so per-class arrays (TLAB bins) need no allocation;
/// the table constructor asserts agreement.
inline constexpr size_t NumClasses = 15 + 12 + 12 + 12;

/// The size classes: fine-grained steps for small objects, coarser steps
/// up to 8 KiB.
struct SizeClassTable {
  std::vector<size_t> CellSizes;
  /// Maps (size + 7) / 8 to a class index, for size in [1, MaxSmallSize].
  std::vector<uint32_t> ClassForWord;

  SizeClassTable() {
    for (size_t S = 16; S <= 128; S += 8)
      CellSizes.push_back(S);
    for (size_t S = 160; S <= 512; S += 32)
      CellSizes.push_back(S);
    for (size_t S = 640; S <= 2048; S += 128)
      CellSizes.push_back(S);
    for (size_t S = 2560; S <= MaxSmallSize; S += 512)
      CellSizes.push_back(S);
    assert(CellSizes.size() == NumClasses && "NumClasses out of sync");

    ClassForWord.resize(MaxSmallSize / 8 + 1);
    uint32_t Class = 0;
    for (size_t Words = 0; Words <= MaxSmallSize / 8; ++Words) {
      size_t Size = Words * 8;
      while (CellSizes[Class] < Size)
        ++Class;
      ClassForWord[Words] = Class;
    }
  }

  uint32_t classFor(size_t Size) const {
    assert(Size > 0 && Size <= MaxSmallSize && "not a small allocation");
    return ClassForWord[(Size + 7) / 8];
  }
};

/// The process-wide table (built once, read-only afterwards — safe to read
/// from any thread).
inline const SizeClassTable &table() {
  static SizeClassTable Table;
  return Table;
}

} // namespace sizeclasses
} // namespace gcassert

#endif // GCASSERT_HEAP_SIZECLASSES_H
