//===- gcassert/heap/Object.h - Managed object accessors --------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Object is the in-heap representation of a managed object: an ObjectHeader
/// followed by the payload. For Class types the payload is the fixed field
/// area; for array types it is a 64-bit length followed by the elements.
///
/// Object is deliberately layout-only: it performs no type checking of its
/// own (debug builds assert on obvious misuse). Typed, checked access lives
/// in the runtime layer.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_OBJECT_H
#define GCASSERT_HEAP_OBJECT_H

#include "gcassert/heap/ObjectHeader.h"
#include "gcassert/heap/WriteBarrier.h"

#include <cassert>
#include <cstring>

namespace gcassert {

class Object;

/// A reference to a managed object. Mark-sweep never moves objects, so a
/// reference is simply the object's address; the semispace collector updates
/// every reference slot it can enumerate when it moves objects.
using ObjRef = Object *;

class Object {
public:
  Object() = delete;
  Object(const Object &) = delete;
  Object &operator=(const Object &) = delete;

  ObjectHeader &header() { return Hdr; }
  const ObjectHeader &header() const { return Hdr; }

  TypeId typeId() const { return Hdr.Type; }

  /// Start of the payload area, immediately after the header.
  uint8_t *payload() { return reinterpret_cast<uint8_t *>(this + 1); }
  const uint8_t *payload() const {
    return reinterpret_cast<const uint8_t *>(this + 1);
  }

  /// \name Class-type field access (byte offsets into the payload)
  /// @{
  ObjRef getRef(uint32_t Offset) const {
    ObjRef Value;
    std::memcpy(&Value, payload() + Offset, sizeof(ObjRef));
    return Value;
  }

  void setRef(uint32_t Offset, ObjRef Value) {
    storeBarrier(this, reinterpret_cast<ObjRef *>(payload() + Offset), Value);
    std::memcpy(payload() + Offset, &Value, sizeof(ObjRef));
  }

  /// Address of the reference slot at \p Offset. Slots are 8-byte aligned
  /// because all reference fields are laid out at aligned offsets.
  ObjRef *refSlot(uint32_t Offset) {
    assert(Offset % sizeof(ObjRef) == 0 && "misaligned reference slot");
    return reinterpret_cast<ObjRef *>(payload() + Offset);
  }

  template <typename T> T getScalar(uint32_t Offset) const {
    T Value;
    std::memcpy(&Value, payload() + Offset, sizeof(T));
    return Value;
  }

  template <typename T> void setScalar(uint32_t Offset, T Value) {
    std::memcpy(payload() + Offset, &Value, sizeof(T));
  }
  /// @}

  /// \name Array access (RefArray and DataArray types)
  /// @{
  uint64_t arrayLength() const {
    uint64_t Length;
    std::memcpy(&Length, payload(), sizeof(Length));
    return Length;
  }

  void setArrayLength(uint64_t Length) {
    std::memcpy(payload(), &Length, sizeof(Length));
  }

  /// Start of array element storage (after the length word).
  uint8_t *arrayData() { return payload() + sizeof(uint64_t); }
  const uint8_t *arrayData() const { return payload() + sizeof(uint64_t); }

  ObjRef getElement(uint64_t Index) const {
    assert(Index < arrayLength() && "array index out of bounds");
    ObjRef Value;
    std::memcpy(&Value, arrayData() + Index * sizeof(ObjRef), sizeof(ObjRef));
    return Value;
  }

  void setElement(uint64_t Index, ObjRef Value) {
    assert(Index < arrayLength() && "array index out of bounds");
    storeBarrier(this, reinterpret_cast<ObjRef *>(arrayData()) + Index, Value);
    std::memcpy(arrayData() + Index * sizeof(ObjRef), &Value, sizeof(ObjRef));
  }

  /// Address of the reference slot for element \p Index (RefArray only).
  ObjRef *elementSlot(uint64_t Index) {
    assert(Index < arrayLength() && "array index out of bounds");
    return reinterpret_cast<ObjRef *>(arrayData()) + Index;
  }
  /// @}

  /// \name Semispace forwarding (stored over the first payload word)
  /// @{
  bool isForwarded() const { return Hdr.testFlag(HF_Forwarded); }

  ObjRef forwardingAddress() const {
    assert(isForwarded() && "object is not forwarded");
    ObjRef Target;
    std::memcpy(&Target, payload(), sizeof(ObjRef));
    return Target;
  }

  void forwardTo(ObjRef Target) {
    Hdr.setFlag(HF_Forwarded);
    std::memcpy(payload(), &Target, sizeof(ObjRef));
  }
  /// @}

private:
  ObjectHeader Hdr;
};

static_assert(sizeof(Object) == sizeof(ObjectHeader),
              "Object must add no storage beyond the header");

} // namespace gcassert

#endif // GCASSERT_HEAP_OBJECT_H
