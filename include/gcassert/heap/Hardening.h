//===- gcassert/heap/Hardening.h - Hardened heap mode -----------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardened heap mode (DESIGN.md §9): corruption *detection* (header
/// checksums, poison-on-free, structural audits), trace-piggybacked
/// *verification* (every edge the collector follows is validated before the
/// target header is trusted — the paper's piggyback trick applied to
/// runtime-level integrity), and *containment* (corrupted objects are
/// quarantined and every reference to them severed, so the VM keeps serving
/// traffic instead of walking into undefined behavior).
///
/// Layering: heaps stamp and poison, the trace loops classify edges, and
/// HeapHardening centralizes verdicts, quarantine state and policy. The
/// whole subsystem is attachment-gated — with no HeapHardening attached
/// (`GcConfig::Hardening == Off`) every hook compiles down to one
/// pointer-null branch and the allocation path is untouched.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_HARDENING_H
#define GCASSERT_HEAP_HARDENING_H

#include "gcassert/heap/Object.h"
#include "gcassert/heap/TypeRegistry.h"
#include "gcassert/support/Checksum.h"
#include "gcassert/support/Compiler.h"
#include "gcassert/support/ErrorHandling.h"

#include <atomic>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace gcassert {

class Heap;

/// How much integrity checking the runtime performs (GcConfig::Hardening).
enum class HardeningMode : uint8_t {
  /// No checking. Headers are not stamped; all hooks are dead branches.
  Off,
  /// Trace-piggybacked checking: every edge the collector follows passes
  /// the quarantine screen, every object is header-validated (type-id
  /// range, header checksum) on first encounter, and free-cell reuse
  /// checks its poison. One extra branch per visited edge.
  Check,
  /// Everything in Check, but validated on *every* edge (pointer range and
  /// alignment before any header read, then the full header — so even a
  /// garbage pointer whose fake flags impersonate a visited object is
  /// caught), plus structural audits (free lists, remembered set) with
  /// repair after every collection.
  Full,
};

/// What to do when a defect is detected.
enum class HardeningPolicy : uint8_t {
  /// reportFatalErrorWithDiagnostics with the defect description — fail
  /// stop, with the crash dump carrying the defect log.
  Abort,
  /// Quarantine the object, sever references to it, keep running.
  Quarantine,
  /// Invoke the user callback with the defect, then quarantine and keep
  /// running (the callback observes; containment still happens).
  Callback,
};

/// Classification of a detected defect.
enum class DefectKind : uint8_t {
  /// Header type id is 0 or beyond the registry.
  BadTypeId,
  /// Header checksum does not match the (type id, length) it covers.
  ChecksumMismatch,
  /// A poisoned free cell was scribbled on between free and reuse.
  PoisonDamage,
  /// An edge target is outside the heap or misaligned (Full mode).
  BadReference,
  /// A free-list invariant failed (cycle, out-of-arena link, live entry).
  FreeListCorrupt,
  /// A remembered-set entry is not a well-formed old-generation object.
  RememberedSetCorrupt,
  /// Residual GC state (stale mark / forwarding bit) outside a collection.
  StaleGcState,
};

const char *defectKindName(DefectKind Kind);

/// One detected integrity violation. Richer than a log line: carries the
/// object (null when the bad address is not a readable object), the kind,
/// and — when the collector ran with RecordPaths — the root-to-object path
/// that reached it, in the paper's Figure-1 spirit.
struct HeapDefect {
  ObjRef Obj = nullptr;
  DefectKind Kind = DefectKind::BadTypeId;
  std::string Description;
  std::vector<ObjRef> Path;
};

/// Fast-path verdict for one trace edge. Ok is the only verdict that lets
/// the collector trust the target header; everything else severs the edge.
enum class EdgeVerdict : uint8_t {
  Ok,
  Quarantined,
  BadReference,
  BadTypeId,
  ChecksumMismatch,
};

/// Monotone detection counters (mirrored into GcStats at cycle end).
struct HardeningCounters {
  uint64_t DefectsDetected = 0;
  uint64_t ChecksumFailures = 0;
  uint64_t BadTypeIds = 0;
  uint64_t PoisonTrips = 0;
  uint64_t BadReferences = 0;
  uint64_t StructuralDefects = 0;
  uint64_t SeveredEdges = 0;
  /// Objects ever quarantined (monotone; quarantine entries for storage the
  /// collector has since reclaimed and recycled are dropped from the live
  /// set but stay counted here).
  uint64_t QuarantinedTotal = 0;
};

/// Central state of the hardened heap mode. One instance per Vm, attached to
/// the heap (which stamps and poisons through it) and the collector (whose
/// trace loops screen edges and classify headers through it). Thread-safe
/// where the parallel mark phase touches it: screenEdge is lock-free until
/// a quarantined object exists, and all mutation funnels through one mutex.
class HeapHardening {
public:
  /// Byte written over freed storage. 0xDB reads as a garbage pointer and
  /// as type id 0xDBDBDBDB — far outside any registry.
  static constexpr uint8_t PoisonByte = 0xDB;
  /// How many leading payload bytes are re-checked when a poisoned free
  /// cell is reused (bounded so allocation stays O(1)).
  static constexpr size_t PoisonCheckLimit = 64;
  /// Defect-log capacity; later defects are counted but not retained.
  static constexpr size_t DefectLogCapacity = 32;

  using DefectCallback = std::function<void(const HeapDefect &)>;

  explicit HeapHardening(HardeningMode Mode,
                         HardeningPolicy Policy = HardeningPolicy::Quarantine,
                         DefectCallback Callback = {});
  ~HeapHardening();

  HeapHardening(const HeapHardening &) = delete;
  HeapHardening &operator=(const HeapHardening &) = delete;

  /// Binds the heap whose pointers screenEdge range-checks in Full mode.
  /// Must happen before the first allocation (headers are stamped from
  /// allocation onward, and a half-stamped heap cannot be verified).
  void attachHeap(Heap &H);

  HardeningMode mode() const { return Mode; }
  bool full() const { return Mode == HardeningMode::Full; }
  HardeningPolicy policy() const { return Policy; }

  /// \name Header checksums
  /// @{

  /// The checksum stamped into a header: 16-bit CRC-32C over the type id
  /// and the logical allocation length (array length for arrays, else 0).
  static uint16_t headerChecksum(TypeId Id, uint64_t Length) {
    return checksum16Pair(Id, Length);
  }

  /// Stamps a freshly allocated object's header. \p Length is the array
  /// length for array types and 0 otherwise. Called once per allocation by
  /// every heap when hardening is attached, so it is served from the
  /// per-type cache like the verification side (a CRC per allocation is
  /// measurable on allocation-heavy workloads). A miss syncs the cache in
  /// place: stamping is mutator work, so no trace is reading the cache
  /// concurrently — without this, every allocation of a type registered
  /// after VM construction would pay the full CRC until the first cycle.
  void stampObject(ObjRef Obj, uint64_t Length) {
    TypeId Id = Obj->header().Type;
    if (GCA_UNLIKELY(Id >= ChecksumCache.size()))
      syncChecksumCache();
    Obj->header().setStoredChecksum(cachedChecksum(ChecksumCache[Id], Length));
  }

  /// Recomputes the checksum a well-typed header should carry. Requires a
  /// valid type id (callers check the range first). The hot path is served
  /// from the per-type cache (a CRC per traced edge costs ~30% on
  /// trace-heavy workloads; a table load costs nothing): non-array types
  /// are a single lookup, arrays below SmallLenTableSize too, and longer
  /// arrays chain the cached id-prefix CRC over the 8 length bytes. Ids
  /// registered since the last cache sync fall back to the full
  /// computation.
  uint16_t expectedChecksum(ObjRef Obj) const {
    TypeId Id = Obj->header().Type;
    if (GCA_LIKELY(Id < ChecksumCache.size())) {
      const TypeChecksum &Cached = ChecksumCache[Id];
      return cachedChecksum(Cached,
                            Cached.IsArray ? Obj->arrayLength() : 0);
    }
    uint64_t Length = Types->get(Id).isArray() ? Obj->arrayLength() : 0;
    return headerChecksum(Id, Length);
  }

  /// Extends the per-type checksum cache to cover every registered type.
  /// Must run while no trace is in flight (the parallel mark workers read
  /// the cache lock-free): the VM calls it at the start of every collector
  /// cycle, and attachHeap seeds it.
  void syncChecksumCache();
  /// @}

  /// \name Trace-piggybacked edge validation
  /// @{

  /// The per-edge containment screen, run on every edge the collector is
  /// about to follow. Both modes check the quarantine set (fast path: one
  /// relaxed load while it is empty). Full mode then validates alignment,
  /// heap containment and the whole header *before* the collector reads
  /// any bit of it — a garbage pointer's fake flag word could otherwise
  /// impersonate a visited object and smuggle a bogus forwarding address
  /// into the slot. Check mode defers the header checks to the collector's
  /// first-encounter path: its threat model is in-place header damage, and
  /// a damaged object enters a cycle unmarked, so the first edge to reach
  /// it still detects, quarantines, and has every later edge caught right
  /// here. Pure and thread-safe (parallel mark workers call it
  /// concurrently).
  EdgeVerdict screenEdge(ObjRef Obj) const {
    if (GCA_UNLIKELY(LiveQuarantined.load(std::memory_order_relaxed) != 0) &&
        isQuarantined(Obj))
      return EdgeVerdict::Quarantined;
    if (Mode == HardeningMode::Full)
      return classifyObjectHeader(Obj);
    return EdgeVerdict::Ok;
  }

  /// Slow path after a non-Ok verdict: records the defect, applies the
  /// policy (abort / callback / quarantine) and counts the severed edge.
  /// The caller nulls the slot. \p Path is the root-to-object path when the
  /// trace recorded one (may be empty).
  void reportEdgeDefect(EdgeVerdict Verdict, ObjRef Obj,
                        std::vector<ObjRef> Path);

  /// True if \p Obj has a well-formed header (valid type id + matching
  /// checksum, forwarding-aware). Used where a raw address must be
  /// validated before scanning (remembered-set entries, audits).
  bool validObjectHeader(ObjRef Obj) const {
    return classifyObjectHeader(Obj) == EdgeVerdict::Ok;
  }

  /// Cheap sanity gate for edges whose target claims to be already visited
  /// (Check mode): a scribbled reference's fake flag word can impersonate a
  /// visited -- or worse, forwarded -- object and bypass the
  /// first-encounter validation entirely, letting visitedAddress read a
  /// bogus forwarding pointer out of payload bytes. The type-id range check
  /// alone refutes such fakes (their "id" is the low half of a pointer) at
  /// the cost of one compare, preserving Check mode's
  /// one-branch-per-visited-edge economy. Pure and thread-safe.
  bool plausibleVisitedHeader(ObjRef Obj) const {
    TypeId Id = Obj->header().Type;
    return GCA_LIKELY(Id != InvalidTypeId && Id <= Types->size());
  }

  /// Classifies the header itself: type-id range, then the header checksum
  /// (skipped on forwarded shells — their first payload word now holds the
  /// forwarding pointer, and they were validated when first reached). In
  /// Full mode alignment and containment are re-screened first, so raw
  /// addresses (remembered-set entries, audit candidates) can be classified
  /// without a prior screenEdge. Pure and thread-safe.
  EdgeVerdict classifyObjectHeader(ObjRef Obj) const {
    if (Mode == HardeningMode::Full && GCA_UNLIKELY(!pointerPlausible(Obj)))
      return EdgeVerdict::BadReference;
    // Atomic flag snapshot: parallel mark workers fetch_or the mark bit on
    // this word concurrently.
    uint32_t Flags = Obj->header().loadFlagsAcquire();
    TypeId Id = Obj->header().Type;
    if (GCA_UNLIKELY(Id == InvalidTypeId || Id > Types->size()))
      return EdgeVerdict::BadTypeId;
    if ((Flags & HF_Forwarded) == 0 &&
        GCA_UNLIKELY(static_cast<uint16_t>(Flags >> HF_ChecksumShift) !=
                     expectedChecksum(Obj)))
      return EdgeVerdict::ChecksumMismatch;
    return EdgeVerdict::Ok;
  }
  /// @}

  /// \name Poison-on-free
  /// @{
  static void poisonRange(void *Ptr, size_t Size) {
    std::memset(Ptr, PoisonByte, Size);
  }

  /// Checks up to PoisonCheckLimit bytes of a poisoned range. Returns the
  /// offset of the first non-poison byte, or nullopt if intact. Word-at-a-
  /// time: this runs on every small-cell reuse, so a byte loop is a
  /// measurable per-allocation tax; the byte loop only runs to pinpoint
  /// the damaged offset after a word mismatch (and for the sub-word tail).
  static std::optional<size_t> findPoisonDamage(const void *Ptr, size_t Size) {
    const uint8_t *Bytes = static_cast<const uint8_t *>(Ptr);
    size_t Limit = Size < PoisonCheckLimit ? Size : PoisonCheckLimit;
    uint64_t Pattern;
    std::memset(&Pattern, PoisonByte, sizeof(Pattern));
    size_t I = 0;
    for (; I + sizeof(uint64_t) <= Limit; I += sizeof(uint64_t)) {
      uint64_t Word;
      std::memcpy(&Word, Bytes + I, sizeof(Word));
      if (GCA_UNLIKELY(Word != Pattern))
        break;
    }
    for (; I < Limit; ++I)
      if (Bytes[I] != PoisonByte)
        return I;
    return std::nullopt;
  }
  /// @}

  /// \name Quarantine
  /// @{

  /// Adds \p Ptr to the quarantine set (idempotent).
  void quarantine(const void *Ptr);

  /// True if \p Ptr is quarantined. Lock-free false while the set is empty.
  bool isQuarantined(const void *Ptr) const {
    if (LiveQuarantined.load(std::memory_order_relaxed) == 0)
      return false;
    std::lock_guard<std::mutex> Lock(Mutex);
    return Quarantine.count(Ptr) != 0;
  }

  /// Objects currently quarantined (drops as moving collectors recycle the
  /// storage; see QuarantinedTotal for the monotone count).
  uint64_t quarantinedCount() const {
    return LiveQuarantined.load(std::memory_order_relaxed);
  }

  /// Drops quarantine entries in [Lo, Hi): the collector reclaimed and is
  /// about to recycle that storage (semispace flip, compaction slide), so
  /// stale entries must not taint fresh objects at the same addresses.
  void dropQuarantinedInRange(const void *Lo, const void *Hi);
  /// @}

  /// \name Defect reporting
  /// @{

  /// Records \p Defect and applies the policy. Quarantines Defect.Obj when
  /// the policy continues (and the defect names an object).
  void reportDefect(HeapDefect Defect);

  /// Counts an edge severed by a trace loop (the containment action that
  /// accompanies a quarantine verdict).
  void noteSeveredEdge() {
    SeveredEdges.fetch_add(1, std::memory_order_relaxed);
  }

  HardeningCounters counters() const;

  /// Copy of the bounded defect log.
  std::vector<HeapDefect> defects() const;

  /// Multi-line human-readable state (counters + defect log), used by the
  /// crash-dump provider and tests.
  std::string describeState() const;
  /// @}

private:
  bool pointerPlausible(const void *Ptr) const;
  void applyPolicy(const HeapDefect &Defect);

  /// One cache row per type id: the CRC-32C state after the 4 id bytes
  /// (arrays chain the length over it), the finished folded checksum for
  /// the Length == 0 case, and for array types a precomputed fold per
  /// length below SmallLenTableSize. Indexed by id; slot 0 (InvalidTypeId)
  /// unused.
  struct TypeChecksum {
    uint32_t IdCrc = 0;
    uint16_t NonArray = 0;
    bool IsArray = false;
    std::vector<uint16_t> SmallLens;
  };
  static constexpr uint64_t SmallLenTableSize = 1024;

  /// Checksum for (type row, length), preferring the precomputed tables;
  /// only arrays longer than SmallLenTableSize pay a CRC.
  static uint16_t cachedChecksum(const TypeChecksum &Cached, uint64_t Length) {
    if (GCA_LIKELY(!Cached.IsArray))
      return Cached.NonArray;
    if (GCA_LIKELY(Length < Cached.SmallLens.size()))
      return Cached.SmallLens[static_cast<size_t>(Length)];
    return foldChecksum16(crc32c(&Length, sizeof(Length), Cached.IdCrc));
  }
  /// Grown only between collections (syncChecksumCache), read lock-free by
  /// the trace loops and parallel mark workers.
  std::vector<TypeChecksum> ChecksumCache;

  HardeningMode Mode;
  HardeningPolicy Policy;
  DefectCallback Callback;
  Heap *AttachedHeap = nullptr;
  const TypeRegistry *Types = nullptr;

  mutable std::mutex Mutex;
  std::unordered_set<const void *> Quarantine;
  std::vector<HeapDefect> DefectLog;
  std::atomic<uint64_t> LiveQuarantined{0};

  std::atomic<uint64_t> Defects{0};
  std::atomic<uint64_t> ChecksumFailures{0};
  std::atomic<uint64_t> BadTypeIds{0};
  std::atomic<uint64_t> PoisonTrips{0};
  std::atomic<uint64_t> BadReferences{0};
  std::atomic<uint64_t> StructuralDefects{0};
  std::atomic<uint64_t> SeveredEdges{0};
  std::atomic<uint64_t> QuarantinedTotal{0};

  std::optional<ScopedCrashDumpProvider> CrashDump;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_HARDENING_H
