//===- gcassert/heap/WriteBarrier.h - Store barrier hook --------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator store barrier used by the generational heap.
///
/// Every mutator reference store (Object::setRef / setElement) consults a
/// process-wide hook. The non-generational heaps leave it null — one
/// predictable branch per store — while a GenerationalHeap installs itself
/// to record old-to-nursery references in its remembered set. GC-internal
/// slot updates write through raw slots and deliberately bypass the barrier.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_WRITEBARRIER_H
#define GCASSERT_HEAP_WRITEBARRIER_H

#include "gcassert/support/Compiler.h"

namespace gcassert {

class Object;

/// Observer of mutator reference stores.
class StoreBarrier {
public:
  virtual ~StoreBarrier();

  /// \p Holder just stored a reference to \p Value (non-null).
  virtual void recordStore(Object *Holder, Object *Value) = 0;
};

namespace detail {
/// The active barrier, or null. At most one generational heap may be live
/// per process.
extern StoreBarrier *ActiveStoreBarrier;
} // namespace detail

/// Called from every mutator reference store.
inline void storeBarrier(Object *Holder, Object *Value) {
  if (GCA_UNLIKELY(detail::ActiveStoreBarrier != nullptr) && Value)
    detail::ActiveStoreBarrier->recordStore(Holder, Value);
}

} // namespace gcassert

#endif // GCASSERT_HEAP_WRITEBARRIER_H
