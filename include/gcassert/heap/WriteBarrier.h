//===- gcassert/heap/WriteBarrier.h - Store barrier hook --------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator store barrier shared by the generational heap and the
/// incremental mark-sweep snapshot.
///
/// Every mutator reference store (Object::setRef / setElement) consults a
/// process-wide hook. The plain heaps leave it null — one predictable branch
/// per store. A GenerationalHeap installs itself for its whole lifetime to
/// record old-to-nursery references in its remembered set; an incremental
/// mark-sweep cycle installs a SatbSnapshot (gc/Satb.h) for the duration of
/// the cycle to log the *old* value of every overwritten slot — the
/// Yuasa-style deletion barrier that keeps the snapshot-at-the-beginning
/// trace exact. The barrier therefore sees the slot address and the
/// outgoing value, not just the incoming one. GC-internal slot updates
/// write through raw slots and deliberately bypass the barrier.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_WRITEBARRIER_H
#define GCASSERT_HEAP_WRITEBARRIER_H

#include "gcassert/support/Compiler.h"

namespace gcassert {

class Object;

/// Observer of mutator reference stores.
class StoreBarrier {
public:
  virtual ~StoreBarrier();

  /// \p Holder is about to overwrite the reference slot \p Slot — whose
  /// current value is \p Old — with \p New (either may be null). Called
  /// before the store lands.
  virtual void recordStore(Object *Holder, Object **Slot, Object *Old,
                           Object *New) = 0;
};

namespace detail {
/// The active barrier, or null. At most one barrier may be installed at a
/// time: a generational heap owns it for its lifetime, an incremental
/// mark-sweep cycle for the duration of the cycle (the two cannot coexist
/// in one process — incremental marking is a mark-sweep-family mode).
extern StoreBarrier *ActiveStoreBarrier;
} // namespace detail

/// Called from every mutator reference store. The old value is loaded only
/// on the cold path (a barrier is installed).
inline void storeBarrier(Object *Holder, Object **Slot, Object *New) {
  if (GCA_UNLIKELY(detail::ActiveStoreBarrier != nullptr))
    detail::ActiveStoreBarrier->recordStore(Holder, Slot, *Slot, New);
}

} // namespace gcassert

#endif // GCASSERT_HEAP_WRITEBARRIER_H
