//===- gcassert/heap/HeapHistogram.h - Per-type occupancy ------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-type heap occupancy snapshots, the standard first question of any
/// leak hunt ("what is the heap full of?") and the raw material of
/// Cork-style heap differencing. Run right after a collection for a
/// live-set snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_HEAPHISTOGRAM_H
#define GCASSERT_HEAP_HEAPHISTOGRAM_H

#include "gcassert/heap/Heap.h"

#include <string>
#include <vector>

namespace gcassert {

class OStream;

/// One histogram row.
struct TypeOccupancy {
  TypeId Type;
  std::string TypeName;
  uint64_t Instances;
  uint64_t Bytes;
};

/// Snapshots the heap's per-type occupancy, sorted by bytes descending.
std::vector<TypeOccupancy> takeHeapHistogram(Heap &TheHeap);

/// Renders a histogram as an aligned text table into \p Out. At most
/// \p MaxRows rows are printed (0 = all), followed by a totals line.
void printHeapHistogram(OStream &Out,
                        const std::vector<TypeOccupancy> &Histogram,
                        size_t MaxRows = 0);

} // namespace gcassert

#endif // GCASSERT_HEAP_HEAPHISTOGRAM_H
