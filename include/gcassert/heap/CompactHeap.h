//===- gcassert/heap/CompactHeap.h - Sliding-compaction heap ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single contiguous bump-allocated space collected by sliding (LISP2
/// style) compaction: live objects are slid down toward the base in address
/// order, leaving one dense prefix and a bump frontier.
///
/// Third collector mechanic for the §2.2 collector-independence claim:
/// unlike mark-sweep (no motion) and semispace (evacuation during trace),
/// compaction moves objects *after* the checking trace completes, so the
/// assertion engine's address translation happens on a finished plan.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_COMPACTHEAP_H
#define GCASSERT_HEAP_COMPACTHEAP_H

#include "gcassert/heap/Heap.h"

#include <memory>
#include <mutex>
#include <vector>

namespace gcassert {

/// Configuration for a CompactHeap.
struct CompactHeapConfig {
  size_t CapacityBytes = 64u << 20;
};

/// The relocation plan computed between marking and sliding: (old, new)
/// address pairs for every live object, sorted by old address.
class CompactionPlan {
public:
  /// The post-compaction address of \p Obj, or null if \p Obj is not in the
  /// plan (i.e. dead). Binary search.
  ObjRef lookup(ObjRef Obj) const;

  size_t liveObjects() const { return Moves.size(); }

private:
  friend class CompactHeap;
  struct Move {
    ObjRef From;
    ObjRef To;
  };
  std::vector<Move> Moves;
};

/// Contiguous bump heap with sliding compaction.
class CompactHeap : public Heap {
public:
  CompactHeap(TypeRegistry &Types, const CompactHeapConfig &Config);

  ObjRef allocate(TypeId Id, uint64_t ArrayLength) override;
  void forEachObject(const std::function<void(ObjRef)> &Fn) override;
  bool contains(const void *Ptr) const override;

  /// \name Collector interface
  /// @{

  /// Walks the (marked) heap in address order and assigns each live object
  /// its slide-down target. Mark bits must be set (i.e. call after
  /// tracing, before any movement).
  CompactionPlan planCompaction();

  /// Slides every planned object to its target (ascending order, so the
  /// copies never overlap destructively), clears mark bits, and resets the
  /// bump frontier to the end of the compacted prefix. All references must
  /// already have been rewritten against \p Plan.
  void executeCompaction(const CompactionPlan &Plan);

  /// Bytes an object occupies (allocation size rounded to pointer
  /// alignment).
  size_t objectSize(ObjRef Obj) const;

  uint64_t liveBytesAfterLastCollection() const { return LiveBytesAfterGc; }

  uint64_t liveBytesAfterLastGc() const override { return LiveBytesAfterGc; }
  /// @}

private:
  std::unique_ptr<uint8_t[]> Storage;
  size_t CapacityBytes;
  uint8_t *Bump;
  uint64_t LiveBytesAfterGc = 0;
  /// Serializes concurrent mutator allocations (the bump and the stats).
  /// Collection-side paths run with the world stopped and stay lock-free.
  mutable std::mutex AllocMutex;

  /// Hardened mode only: per-object allocation sizes in address order, so
  /// planCompaction / forEachObject can step over a corrupt header instead
  /// of deriving a garbage stride from it. Rebuilt from the plan at every
  /// compaction (survivors, in slide order).
  std::vector<uint32_t> SizeLog;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_COMPACTHEAP_H
