//===- gcassert/heap/Tlab.h - Thread-local allocation buffers ---*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread allocation state for FreeListHeap (DESIGN.md §13). Each
/// mutator thread owns a TlabSet: one bin per size class holding a
/// bump-pointer range (a contiguous run of cells sliced from a heap-owned
/// "TLAB block") plus a private free-cell list detached in batches from the
/// shared segregated free list. The fast path touches only this structure —
/// no lock, no atomics — and falls into FreeListHeap::refillTlab (which
/// takes the heap's allocation mutex) only when a bin runs dry.
///
/// Sizing adapts to the thread's allocation rate per class: every refill
/// doubles the next chunk (refill frequency is the rate signal) up to
/// MaxBytes; retiring — which happens at every safepoint, so the sweep sees
/// a parseable heap and exact stats — halves it back toward the minimum.
///
/// Heap statistics are accumulated in the TlabSet (PendingBytes /
/// PendingObjects) and folded into the shared HeapStats under the heap
/// mutex at refill and retire, so the shared counters are exact whenever
/// the world is stopped.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_TLAB_H
#define GCASSERT_HEAP_TLAB_H

#include "gcassert/heap/SizeClasses.h"

#include <algorithm>
#include <cstdint>

namespace gcassert {

/// One size class's thread-local allocation state.
struct TlabBin {
  /// Bump range: cells [BumpCur, BumpEnd) are owned by this thread and
  /// carved from one block, all of this bin's cell size.
  uint8_t *BumpCur = nullptr;
  uint8_t *BumpEnd = nullptr;
  /// Private free-cell chain (same in-cell link encoding as the shared
  /// free list), detached from the shared list in batches.
  void *LocalFree = nullptr;
};

/// All of one thread's TLAB state. Owned by the MutatorThread; touched by
/// other threads only while the world is stopped (retire).
class TlabSet {
public:
  /// Default ceiling for one bin's refill chunk: a whole heap block.
  static constexpr size_t DefaultMaxBytes = 64u * 1024;
  /// First refill chunk per class; doubles per refill up to MaxBytes.
  static constexpr size_t MinBytes = 1024;

  explicit TlabSet(size_t MaxBytes = DefaultMaxBytes)
      : MaxBytes(std::max(MaxBytes, MinBytes)) {
    for (size_t &D : Desired)
      D = MinBytes;
  }

  TlabSet(const TlabSet &) = delete;
  TlabSet &operator=(const TlabSet &) = delete;

  TlabBin &bin(uint32_t ClassIndex) { return Bins[ClassIndex]; }

  /// Chunk size (bytes) the next refill of \p ClassIndex should fetch.
  size_t desiredBytes(uint32_t ClassIndex) const {
    return Desired[ClassIndex];
  }

  /// Records one refill of \p ClassIndex: the thread is allocating this
  /// class faster than its chunk lasts, so double the next chunk.
  void noteRefill(uint32_t ClassIndex) {
    ++RefillCount;
    Desired[ClassIndex] = std::min(MaxBytes, Desired[ClassIndex] * 2);
  }

  /// Refills since construction (rate introspection for tests/benches).
  uint64_t refillCount() const { return RefillCount; }

  /// Drops every bin and decays the adaptive sizing. The abandoned cells
  /// are all still headered as free (type InvalidTypeId), so the sweep
  /// that every retire precedes re-threads them onto the shared free
  /// lists; pending stats must be flushed by the heap first.
  void retireBins() {
    for (TlabBin &B : Bins)
      B = TlabBin();
    for (size_t &D : Desired)
      D = std::max(MinBytes, D / 2);
  }

  /// \name Stats pending the next flush into the shared HeapStats.
  /// @{
  uint64_t PendingBytes = 0;
  uint64_t PendingObjects = 0;
  /// @}

private:
  TlabBin Bins[sizeclasses::NumClasses];
  size_t Desired[sizeclasses::NumClasses];
  size_t MaxBytes;
  uint64_t RefillCount = 0;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_TLAB_H
