//===- gcassert/heap/GenerationalHeap.h - Nursery + old gen ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-generation heap: a bump-pointer nursery for new objects and a
/// free-list old generation for survivors, with a store barrier feeding the
/// old-to-nursery remembered set.
///
/// The paper discusses generational collectors explicitly (§2.2): the
/// technique works with any tracing collector, "a generational collector,
/// however, performs full-heap collections infrequently, allowing some
/// assertions to go unchecked for long periods of time". This heap (and
/// GenerationalCollector) exists to reproduce that trade-off — see the
/// ablation_generational bench.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_HEAP_GENERATIONALHEAP_H
#define GCASSERT_HEAP_GENERATIONALHEAP_H

#include "gcassert/heap/FreeListHeap.h"
#include "gcassert/heap/WriteBarrier.h"

#include <memory>
#include <mutex>
#include <unordered_set>

namespace gcassert {

/// Configuration for a GenerationalHeap.
struct GenerationalHeapConfig {
  /// Total capacity (nursery + old generation budget).
  size_t CapacityBytes = 64u << 20;
  /// Nursery size; 0 picks CapacityBytes / 8 clamped to [256 KiB, 4 MiB].
  size_t NurseryBytes = 0;
};

/// Nursery + old generation. Installs itself as the process store barrier
/// for its lifetime (one generational heap per process).
class GenerationalHeap : public Heap, public StoreBarrier {
public:
  GenerationalHeap(TypeRegistry &Types, const GenerationalHeapConfig &Config);
  ~GenerationalHeap() override;

  /// \name Heap interface
  /// @{
  ObjRef allocate(TypeId Id, uint64_t ArrayLength) override;
  void forEachObject(const std::function<void(ObjRef)> &Fn) override;
  bool contains(const void *Ptr) const override;
  /// @}

  /// StoreBarrier: records old-to-nursery stores (the slot and outgoing
  /// value the SATB-oriented signature carries are irrelevant here). Out of
  /// line for the "corrupt.remset" failpoint (validation of the
  /// remembered-set audit).
  void recordStore(Object *Holder, Object **Slot, Object *Old,
                   Object *New) override;

  /// Attaches hardening to the nursery bookkeeping and the old generation.
  void setHardening(HeapHardening *H) override {
    Heap::setHardening(H);
    OldGen->setHardening(H);
  }

  /// Audits the remembered set (every entry must be a well-formed old
  /// generation object) and forwards to the old generation's free-list
  /// audit. With \p Repair, bad entries are dropped.
  void auditStructure(std::vector<HeapDefect> &Defects, bool Repair) override;

  /// \name Collector interface
  /// @{
  bool inNursery(const void *Ptr) const {
    const uint8_t *P = static_cast<const uint8_t *>(Ptr);
    return P >= Nursery.get() && P < Nursery.get() + NurseryBytes;
  }

  /// Marks the start of a nursery evacuation: until
  /// finishMinorCollection(), forwarded nursery shells make the heap
  /// unsafe to enumerate.
  void beginMinorCollection() { EvacuationActive = true; }

  /// Copies the nursery object \p Obj into the old generation and installs
  /// a forwarding pointer. Aborts (with crash diagnostics) if the old
  /// generation is full — the collector's pre-flight promotion guard
  /// exists to prevent ever getting here.
  ObjRef promote(ObjRef Obj);

  /// Resets the nursery bump pointer (all survivors must have been
  /// promoted) and clears the remembered set.
  void finishMinorCollection();

  /// Old objects holding (potential) nursery references.
  const std::unordered_set<Object *> &rememberedSet() const {
    return RememberedSet;
  }

  /// Drops remembered-set entries whose object is unmarked. Must run after
  /// a full-graph trace and before the old generation's sweep (afterwards
  /// the dead entries would be dangling).
  void pruneRememberedSetUnmarked() {
    for (auto It = RememberedSet.begin(); It != RememberedSet.end();)
      It = (*It)->header().isMarked() ? std::next(It)
                                      : RememberedSet.erase(It);
  }

  /// Clears mark bits on every nursery object (a full-graph trace marks
  /// nursery objects too, but only the old generation's sweep clears bits).
  void clearNurseryMarks();

  /// Walks nursery objects in address order (the hardened walk strides the
  /// size log and skips corrupt or quarantined headers). Must not run
  /// during an active evacuation — forwarded shells are not enumerable.
  void forEachNurseryObject(const std::function<void(ObjRef)> &Fn);

  /// The old generation, for the major (mark-sweep) collection.
  FreeListHeap &oldGen() { return *OldGen; }

  uint64_t nurseryBytesUsed() const {
    return static_cast<uint64_t>(NurseryBump - Nursery.get());
  }
  uint64_t nurseryCapacity() const { return NurseryBytes; }

  /// Free-space estimate for the old generation's small-object arena —
  /// the space promotions actually draw from (the large-object budget is
  /// deliberately excluded; large objects are pretenured, never promoted).
  uint64_t oldGenFreeEstimate() const { return OldGen->arenaBytesFree(); }

  /// Occupancy for the degradation ladder: what survives collections is
  /// old-generation data (the nursery empties every minor cycle).
  uint64_t liveBytesAfterLastGc() const override {
    return OldGen->liveBytesAfterLastSweep();
  }

  bool safeToEnumerate() const override { return !EvacuationActive; }
  /// @}

private:
  ObjRef allocateInNursery(size_t Size);

  std::unique_ptr<FreeListHeap> OldGen;
  std::unique_ptr<uint8_t[]> Nursery;
  size_t NurseryBytes;
  uint8_t *NurseryBump;
  std::unordered_set<Object *> RememberedSet;
  bool EvacuationActive = false;
  /// Serializes concurrent mutator allocations (nursery bump + stats).
  /// Collection-side paths run with the world stopped and stay lock-free.
  mutable std::mutex AllocMutex;
  /// Guards RememberedSet inserts from the store barrier, which runs on
  /// mutator threads. The collector reads the set with the world stopped.
  mutable std::mutex RemSetMutex;

  /// Hardened mode only: nursery allocation sizes in address order, so the
  /// nursery walks (clearNurseryMarks, forEachObject) can step over a
  /// corrupt header. Cleared when the nursery resets.
  std::vector<uint32_t> NurserySizeLog;
};

} // namespace gcassert

#endif // GCASSERT_HEAP_GENERATIONALHEAP_H
