//===- gcassert/telemetry/TraceEvents.h - Structured GC tracing -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured event tracing for the collector (DESIGN.md §12).
///
/// Every GC-interesting moment — cycle begin/end, the per-phase spans of
/// each collector family, the per-worker spans of the parallel mark and
/// sweep, assertion-engine passes, degradation-ladder transitions, hardening
/// defects, failpoint trips — is recorded as a typed TraceEvent in a
/// per-thread ring buffer and exported on demand in Chrome `trace_event`
/// JSON, loadable in chrome://tracing or Perfetto.
///
/// The cost model mirrors support/FaultInjection.h: disarmed (the default),
/// every instrumentation site is one relaxed atomic load and a predicted
/// branch — see bench/telemetry_overhead.cpp. Armed, an event is a
/// monotonic-clock read plus a handful of stores into a thread-local ring;
/// no locks, no allocation (the ring is allocated once per thread on first
/// armed use). When a ring wraps, the oldest events are overwritten and a
/// per-ring drop counter records how many were lost — telemetry never
/// stalls the collector.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_TELEMETRY_TRACEEVENTS_H
#define GCASSERT_TELEMETRY_TRACEEVENTS_H

#include "gcassert/support/Compiler.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gcassert {

class OStream;

namespace telemetry {

/// What a TraceEvent describes. Duration kinds come in B/E pairs (Chrome
/// "B"/"E" phases); the *Mark/Sweep worker kinds nest inside a phase span
/// on their own worker thread's timeline; the last group are instants.
enum class EventKind : uint8_t {
  /// One whole stop-the-world collection (arg: cycle number).
  GcCycle,
  /// The engine-driven pre-root ownership phase (§2.5.2 Phase 1).
  OwnershipPhase,
  /// The root-driven trace (mark or copy) phase.
  MarkPhase,
  /// Reclamation over the free-list heap (arg: bytes reclaimed on 'E').
  SweepPhase,
  /// Mark-compact: plan + reference rewrite + slide.
  CompactPhase,
  /// Copying evacuation (semispace cycle, generational nursery).
  EvacuatePhase,
  /// One parallel-mark worker's trace participation (arg: worker index).
  MarkWorker,
  /// One parallel-sweep worker's participation (arg: worker index).
  SweepWorker,
  /// The assertion engine's post-trace pass (instance checks, table
  /// pruning, deferred violations).
  AssertionPass,
  /// Instant: the degradation ladder changed level (arg: new level).
  DegradationShift,
  /// Instant: the hardened heap reported a defect (arg: DefectKind).
  HardeningDefect,
  /// Instant: an armed failpoint fired (name: the site name).
  FailpointTrip,
  /// Instant: an assertion violation was emitted (arg: AssertionKind).
  Violation,
  /// One OS mutator thread's whole body (arg: mutator thread id). Gives
  /// every concurrent mutator its own lane next to the GC worker lanes.
  Mutator,
  /// A mutator parked at a safepoint poll, waiting out a pause.
  SafepointPark,
  /// The stop-the-world window, on the requesting thread's lane (arg:
  /// safepoint epoch).
  SafepointStw,
  /// One serving request's execution on its mutator thread (arg: global
  /// request index). Lining these up against SafepointStw spans is how the
  /// latency-SLO harness attributes tail outliers to GC pauses.
  Request,
  /// One budgeted incremental mark slice (DESIGN.md §15): a short
  /// stop-the-world pause that drains part of the worklist (arg: objects
  /// scanned on 'E'). Nested inside the cycle's GcCycle span, which for an
  /// incremental cycle covers snapshot pause through terminal pause.
  MarkSlice,
};

/// Number of distinct EventKind values (for per-kind tables).
inline constexpr size_t NumEventKinds =
    static_cast<size_t>(EventKind::MarkSlice) + 1;

/// Stable lower-case name for \p Kind (the exported span name).
const char *eventKindName(EventKind Kind);

/// Chrome trace_event phase letter: begin, end, or instant.
enum class EventPhase : uint8_t { Begin = 'B', End = 'E', Instant = 'i' };

/// One recorded event. 32 bytes; rings hold RingCapacity of them.
struct TraceEvent {
  uint64_t Nanos = 0;      ///< monotonicNanos() at emission.
  const char *Name = nullptr; ///< Override span name (static storage only).
  uint64_t Arg = 0;        ///< Kind-specific payload (see EventKind).
  EventKind Kind = EventKind::GcCycle;
  EventPhase Phase = EventPhase::Instant;
  uint16_t Tid = 0;        ///< Small per-thread id assigned at registration.
};

/// Events each thread's ring holds before wrapping. Power of two so the
/// wrap is a mask, not a division.
inline constexpr size_t RingCapacity = 1u << 14;

/// A single-writer ring buffer of TraceEvents. The owning thread pushes;
/// the exporter reads only while the world is stopped (writeChromeTrace
/// documents the contract), so no per-event synchronization is needed
/// beyond the release publication of Head.
class TraceRing {
public:
  explicit TraceRing(uint16_t Tid);
  ~TraceRing();

  TraceRing(const TraceRing &) = delete;
  TraceRing &operator=(const TraceRing &) = delete;

  uint16_t tid() const { return Tid; }

  /// Appends one event, overwriting the oldest when full.
  void push(EventKind Kind, EventPhase Phase, uint64_t Arg, const char *Name);

  /// Events ever pushed (monotone; size() = min(pushed, RingCapacity)).
  uint64_t pushed() const { return Head.load(std::memory_order_acquire); }

  /// Events lost to wraparound: max(pushed - RingCapacity, 0).
  uint64_t dropped() const;

  /// Events currently held.
  size_t size() const;

  /// The \p I-th oldest held event (0 <= I < size()).
  const TraceEvent &at(size_t I) const;

  void clear() { Head.store(0, std::memory_order_release); }

private:
  TraceEvent *Slots; ///< RingCapacity entries, allocated at construction.
  std::atomic<uint64_t> Head{0};
  uint16_t Tid;

  friend struct RingRegistry;
  TraceRing *NextRegistered = nullptr;
};

/// \name Arming
/// @{

/// True when tracing is armed. One relaxed load — the only cost every
/// disarmed instrumentation site pays.
bool tracingEnabled();

/// Arms or disarms tracing process-wide. Existing events are kept.
void setTracingEnabled(bool Enable);

/// Arms tracing if the GCASSERT_TRACE environment variable is set to
/// anything but "0"/"". Returns the variable's value (a path when the
/// caller should also export on exit, per the harness contract) or empty.
std::string armTracingFromEnv();
/// @}

/// \name Emission (instrumentation sites)
/// @{

/// Emits a begin event for \p Kind on this thread's ring.
GCA_NOINLINE void emitSlow(EventKind Kind, EventPhase Phase, uint64_t Arg,
                           const char *Name);

inline void begin(EventKind Kind, uint64_t Arg = 0) {
  if (GCA_LIKELY(!tracingEnabled()))
    return;
  emitSlow(Kind, EventPhase::Begin, Arg, nullptr);
}

inline void end(EventKind Kind, uint64_t Arg = 0) {
  if (GCA_LIKELY(!tracingEnabled()))
    return;
  emitSlow(Kind, EventPhase::End, Arg, nullptr);
}

/// Emits an instant event. \p Name, when given, must point to static
/// storage (site names, phase literals); it overrides the kind name in the
/// export.
inline void instant(EventKind Kind, uint64_t Arg = 0,
                    const char *Name = nullptr) {
  if (GCA_LIKELY(!tracingEnabled()))
    return;
  emitSlow(Kind, EventPhase::Instant, Arg, Name);
}

/// RAII B/E span for \p Kind. The end event repeats the begin arg unless
/// setEndArg() supplies a result (e.g. bytes reclaimed).
class Span {
public:
  explicit Span(EventKind Kind, uint64_t Arg = 0) : Kind(Kind), Arg(Arg) {
    begin(Kind, Arg);
  }
  ~Span() { end(Kind, Arg); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  void setEndArg(uint64_t NewArg) { Arg = NewArg; }

private:
  EventKind Kind;
  uint64_t Arg;
};
/// @}

/// \name Export & bookkeeping
/// @{

/// Writes every held event from every thread's ring as Chrome trace_event
/// JSON (the {"traceEvents": [...]} object form, timestamps in
/// microseconds) to \p Out. Events are merged in timestamp order. Must not
/// race with event emission — call it with the world stopped (after the
/// workload, between cycles, or from the owning thread in tests).
void writeChromeTrace(OStream &Out);

/// writeChromeTrace to \p Path. Returns false (and fills \p Error) when
/// the file cannot be written.
bool writeChromeTraceFile(const std::string &Path, std::string *Error);

/// Total events held across all rings.
uint64_t totalEvents();

/// Total events lost to ring wraparound across all rings.
uint64_t totalDropped();

/// Clears every ring (events and drop accounting). Test teardown.
void clearAllRings();
/// @}

} // namespace telemetry
} // namespace gcassert

#endif // GCASSERT_TELEMETRY_TRACEEVENTS_H
