//===- gcassert/telemetry/Metrics.h - GC metrics registry -------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters, gauges, and histograms for the collector
/// (DESIGN.md §12): pause times, bytes marked/swept per phase, steal counts
/// from the Chase-Lev deques, per-assertion-kind check and violation
/// counts, heap occupancy. Snapshotted at cycle end by the Collector base
/// class (the structured façade GcStats forwards into) and dumpable as JSON
/// via the harness's --metrics-out flag.
///
/// Counters and gauges are relaxed atomics — safe to bump from parallel GC
/// workers. Histograms use power-of-two buckets with atomic counts, so
/// recording is wait-free. Instrument lookup by name takes a mutex and is
/// meant for setup paths; hot paths hold the returned reference (instrument
/// storage is never invalidated while the registry lives).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_TELEMETRY_METRICS_H
#define GCASSERT_TELEMETRY_METRICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace gcassert {

class OStream;
struct GcStats;
struct EngineCounters;

namespace telemetry {

/// A monotone event count.
class Counter {
public:
  void add(uint64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  void increment() { add(1); }
  /// Sets the absolute value — for counters mirrored from an external
  /// cumulative source (GcStats) rather than bumped in place.
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A point-in-time level (occupancy, live bytes). Stored in millionths for
/// fractional levels via setRatio().
class Gauge {
public:
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }
  /// Stores \p Ratio (e.g. 0.37 occupancy) scaled by 1e6.
  void setRatio(double Ratio) {
    set(static_cast<uint64_t>(Ratio < 0 ? 0 : Ratio * 1e6));
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  double ratio() const { return static_cast<double>(value()) / 1e6; }

private:
  std::atomic<uint64_t> Value{0};
};

/// A log2-bucketed histogram of uint64 samples (nanosecond pauses, byte
/// volumes). Bucket B counts samples with bit_width(sample) == B, i.e.
/// bucket 0 holds zeros and bucket B >= 1 holds [2^(B-1), 2^B).
class Histogram {
public:
  static constexpr size_t NumBuckets = 65; // bit_width ranges 0..64

  void record(uint64_t Sample);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const;
  uint64_t bucketCount(size_t B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// The named-instrument registry. One process-wide instance (global());
/// tests may build private ones.
class MetricsRegistry {
public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry the collectors report into.
  static MetricsRegistry &global();

  /// Returns the instrument registered under \p Name, creating it on first
  /// use. A name is bound to one instrument kind for the registry's life;
  /// requesting it as another kind is a fatal error (it would silently
  /// split the metric).
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Writes every instrument as one JSON object:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {count, sum, min, max, mean, buckets:{...}}}}
  /// Histogram buckets are keyed by their lower bound and elide empties.
  void writeJson(OStream &Out) const;

  /// writeJson to \p Path. Returns false (and fills \p Error) on I/O
  /// failure.
  bool writeJsonFile(const std::string &Path, std::string *Error) const;

  /// Drops every instrument (names and values). Test teardown only —
  /// references returned earlier dangle after this.
  void reset();

private:
  struct Instrument;
  Instrument &get(std::string_view Name, uint8_t Kind);

  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Instrument>, std::less<>> Instruments;
};

/// \name Collector façade
/// The per-cycle snapshot points. Collector::finishCycleTiming calls
/// snapshotCycle after every collection; the harness calls
/// snapshotEngineCounters before dumping.
/// @{

/// Mirrors \p Stats into the global registry ("gc.*" counters), records
/// the cycle's pause in the "gc.pause_ns" histogram (and
/// "gc.minor_pause_ns" for minor cycles), and sets the "gc.occupancy"
/// gauge from \p LiveBytes / \p CapacityBytes when the capacity is known.
void snapshotCycle(const GcStats &Stats, bool MinorCycle, uint64_t LiveBytes,
                   uint64_t CapacityBytes);

/// Mirrors \p Counters into the global registry ("engine.*" counters):
/// per-assertion-kind check calls, violations, ownee scans.
void snapshotEngineCounters(const EngineCounters &Counters);
/// @}

} // namespace telemetry
} // namespace gcassert

#endif // GCASSERT_TELEMETRY_METRICS_H
